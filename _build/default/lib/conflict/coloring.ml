module Bitset = Wl_util.Bitset

type t = int array

let is_valid g coloring =
  Array.length coloring = Ugraph.n_vertices g
  && Array.for_all (fun c -> c >= 0) coloring
  && List.for_all (fun (u, v) -> coloring.(u) <> coloring.(v)) (Ugraph.edges g)

let n_colors coloring =
  if Array.length coloring = 0 then 0 else 1 + Array.fold_left max (-1) coloring

let normalize coloring =
  let rename = Hashtbl.create 16 in
  let next = ref 0 in
  Array.map
    (fun c ->
      match Hashtbl.find_opt rename c with
      | Some c' -> c'
      | None ->
        let c' = !next in
        incr next;
        Hashtbl.add rename c c';
        c')
    coloring

let smallest_free g coloring v =
  let used = Array.make (Ugraph.degree g v + 1) false in
  List.iter
    (fun w ->
      let c = coloring.(w) in
      if c >= 0 && c < Array.length used then used.(c) <- true)
    (Ugraph.neighbors g v);
  let rec first i = if not used.(i) then i else first (i + 1) in
  first 0

let greedy ?order g =
  let n = Ugraph.n_vertices g in
  let order = match order with Some o -> o | None -> Array.init n Fun.id in
  let coloring = Array.make n (-1) in
  Array.iter (fun v -> coloring.(v) <- smallest_free g coloring v) order;
  coloring

let greedy_desc_degree g =
  let n = Ugraph.n_vertices g in
  let order = Array.init n Fun.id in
  Array.sort (fun u v -> compare (Ugraph.degree g v) (Ugraph.degree g u)) order;
  greedy ~order g

let dsatur g =
  let n = Ugraph.n_vertices g in
  let coloring = Array.make n (-1) in
  (* Saturation: set of neighbor colors per vertex. Capacity n colors. *)
  let sat = Array.init n (fun _ -> Bitset.create (max 1 n)) in
  let colored = Array.make n false in
  for _ = 1 to n do
    (* Pick uncolored vertex with max saturation, tie-break on degree. *)
    let best = ref (-1) in
    let best_key = ref (-1, -1) in
    for v = 0 to n - 1 do
      if not colored.(v) then begin
        let key = (Bitset.cardinal sat.(v), Ugraph.degree g v) in
        if !best = -1 || key > !best_key then begin
          best := v;
          best_key := key
        end
      end
    done;
    let v = !best in
    let c =
      let rec first i = if not (Bitset.mem sat.(v) i) then i else first (i + 1) in
      first 0
    in
    coloring.(v) <- c;
    colored.(v) <- true;
    List.iter (fun w -> if not colored.(w) then Bitset.add sat.(w) c) (Ugraph.neighbors g v)
  done;
  coloring

let best_heuristic g =
  let a = greedy_desc_degree g and b = dsatur g in
  if n_colors a <= n_colors b then a else b

let pp ppf coloring =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    (Array.to_list coloring)
