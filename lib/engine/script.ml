open Wl_core
module Jsonx = Wl_util.Jsonx

type t = Engine.op list

let current_version = 1

let to_string ops =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "wlops %d\n" current_version);
  List.iter
    (fun op ->
      (match op with
      | Engine.Add_path verts ->
        Buffer.add_string buf "path";
        List.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %d" v)) verts
      | Engine.Remove_path pid -> Buffer.add_string buf (Printf.sprintf "remove %d" pid)
      | Engine.Add_arc (u, v) -> Buffer.add_string buf (Printf.sprintf "arc %d %d" u v));
      Buffer.add_char buf '\n')
    ops;
  Buffer.contents buf

let of_string text =
  let err lineno msg = Error (Error.Parse { line = lineno; msg }) in
  let parse_int lineno s =
    match int_of_string_opt s with
    | Some v -> Ok v
    | None -> err lineno (Printf.sprintf "not an integer: %S" s)
  in
  let rec ints lineno acc = function
    | [] -> Ok (List.rev acc)
    | w :: ws -> (
      match parse_int lineno w with
      | Ok v -> ints lineno (v :: acc) ws
      | Error e -> Error e)
  in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let words =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | [] -> go (lineno + 1) acc rest
      | "wlops" :: [ v ] -> (
        match parse_int lineno v with
        | Error e -> Error e
        | Ok v ->
          if v < 1 || v > current_version then Error (Error.Unsupported_version v)
          else go (lineno + 1) acc rest)
      | "path" :: verts -> (
        match ints lineno [] verts with
        | Error e -> Error e
        | Ok vs -> go (lineno + 1) (Engine.Add_path vs :: acc) rest)
      | "remove" :: [ p ] -> (
        match parse_int lineno p with
        | Error e -> Error e
        | Ok pid -> go (lineno + 1) (Engine.Remove_path pid :: acc) rest)
      | "arc" :: u :: [ v ] -> (
        match (parse_int lineno u, parse_int lineno v) with
        | Error e, _ | _, Error e -> Error e
        | Ok u, Ok v -> go (lineno + 1) (Engine.Add_arc (u, v) :: acc) rest)
      | word :: _ -> err lineno (Printf.sprintf "unknown op %S" word))
  in
  go 1 [] (String.split_on_char '\n' text)

let to_json ?pretty ops =
  let op_json = function
    | Engine.Add_path verts ->
      Jsonx.Obj
        [
          ("op", Jsonx.Str "add_path");
          ("vertices", Jsonx.Arr (List.map (fun v -> Jsonx.Int v) verts));
        ]
    | Engine.Remove_path pid ->
      Jsonx.Obj [ ("op", Jsonx.Str "remove_path"); ("id", Jsonx.Int pid) ]
    | Engine.Add_arc (u, v) ->
      Jsonx.Obj
        [ ("op", Jsonx.Str "add_arc"); ("from", Jsonx.Int u); ("to", Jsonx.Int v) ]
  in
  Jsonx.to_string ?pretty
    (Jsonx.Obj
       [
         ("format", Jsonx.Str "wl-ops");
         ("version", Jsonx.Int current_version);
         ("ops", Jsonx.Arr (List.map op_json ops));
       ])

let json_err msg = Error (Error.Parse { line = 0; msg })

let of_json text =
  match Jsonx.parse text with
  | Error msg -> json_err msg
  | Ok (Jsonx.Obj _ as json) -> (
    (match Jsonx.member "format" json with
    | Some (Jsonx.Str "wl-ops") | None -> Ok ()
    | Some (Jsonx.Str other) -> json_err (Printf.sprintf "unknown format %S" other)
    | Some _ -> json_err "\"format\" must be a string")
    |> function
    | Error _ as e -> e
    | Ok () -> (
      (match Jsonx.member "version" json with
      | None -> Ok ()
      | Some v -> (
        match Jsonx.to_int v with
        | Some v when v >= 1 && v <= current_version -> Ok ()
        | Some v -> Error (Error.Unsupported_version v)
        | None -> json_err "\"version\" must be an integer"))
      |> function
      | Error _ as e -> e
      | Ok () -> (
        match Option.bind (Jsonx.member "ops" json) Jsonx.to_list with
        | None -> json_err "missing \"ops\" array"
        | Some ops ->
          let int_field j name =
            match Option.bind (Jsonx.member name j) Jsonx.to_int with
            | Some v -> Ok v
            | None -> json_err (Printf.sprintf "op needs integer %S" name)
          in
          let parse_op j =
            match Option.bind (Jsonx.member "op" j) Jsonx.to_str with
            | Some "add_path" -> (
              match Option.bind (Jsonx.member "vertices" j) Jsonx.to_list with
              | None -> json_err "add_path needs a \"vertices\" array"
              | Some vs ->
                let rec go acc = function
                  | [] -> Ok (Engine.Add_path (List.rev acc))
                  | x :: rest -> (
                    match Jsonx.to_int x with
                    | Some v -> go (v :: acc) rest
                    | None -> json_err "\"vertices\" must be integers")
                in
                go [] vs)
            | Some "remove_path" ->
              Result.map (fun pid -> Engine.Remove_path pid) (int_field j "id")
            | Some "add_arc" -> (
              match (int_field j "from", int_field j "to") with
              | Ok u, Ok v -> Ok (Engine.Add_arc (u, v))
              | (Error _ as e), _ | _, (Error _ as e) -> e)
            | Some other -> json_err (Printf.sprintf "unknown op %S" other)
            | None -> json_err "op entry needs an \"op\" string"
          in
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | j :: rest -> (
              match parse_op j with
              | Ok op -> go (op :: acc) rest
              | Error _ as e -> e)
          in
          go [] ops)))
  | Ok _ -> json_err "expected a JSON object"

let read_file path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error (Error.Io msg)
  | text ->
    let rec first_printable i =
      if i >= String.length text then None
      else
        match text.[i] with
        | ' ' | '\t' | '\n' | '\r' -> first_printable (i + 1)
        | c -> Some c
    in
    if first_printable 0 = Some '{' then of_json text else of_string text

let write_file path ops =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ops))
