(** Structural probes on undirected graphs.

    Corollary 5 of the paper: the conflict graph of a UPP-DAG contains no
    [K_{2,3}] (and no [K_5] minus two independent edges); the tests drive
    these detectors over the conflict graphs our generators produce. *)

val find_k23 : Ugraph.t -> (int list * int list) option
(** An induced [K_{2,3}]: two non-adjacent vertices adjacent to the same
    three pairwise non-adjacent others.  Returns [(pair, triple)].  This is
    the pattern Corollary 5 forbids — its proof takes both sides pairwise
    disjoint (a clique such as [K_5] does contain a complete-bipartite
    [K_{2,3}] subgraph and {e is} realizable on a UPP-DAG, so the liberal
    reading would be wrong). *)

val has_k23 : Ugraph.t -> bool

val find_k5_minus_two_independent_edges : Ugraph.t -> int list option
(** Five vertices inducing exactly [K_5] minus two disjoint edges: the two
    non-adjacent pairs are disjoint and every other pair is adjacent. *)

val is_cycle_graph : Ugraph.t -> bool
(** The whole graph is a single cycle [C_n] ([n >= 3]): connected and
    2-regular. *)

val induced_cycle_lengths : Ugraph.t -> int list
(** Lengths of the cycles when the graph is a disjoint union of cycles
    (each vertex has degree 2); raises [Invalid_argument] otherwise.
    Used to validate the Theorem 2 conflict graph ([C_{2k+1}]). *)

val odd_girth : Ugraph.t -> int option
(** Length of a shortest odd cycle, if any ([w >= 3] needs one). *)
