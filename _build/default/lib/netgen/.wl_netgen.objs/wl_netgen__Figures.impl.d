lib/netgen/figures.ml: Array Digraph Dipath Hashtbl Instance List Printf Theorem2 Wl_core Wl_dag Wl_digraph
