type 'a t = { mutable data : 'a array; mutable len : int }

let create ?(capacity = 8) () =
  ignore capacity;
  { data = [||]; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let grow t x =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 8 else 2 * cap in
  let data = Array.make new_cap x in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let last t =
  if t.len = 0 then invalid_arg "Vec.last: empty";
  t.data.(t.len - 1)

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop: empty";
  t.len <- t.len - 1;
  t.data.(t.len)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_array t = Array.sub t.data 0 t.len

let to_list t = Array.to_list (to_array t)

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let clear t = t.len <- 0
