(* Tests for internal-cycle detection and canonicalization — the paper's
   central structural dichotomy. *)

open Helpers
open Wl_digraph
module Dag = Wl_dag.Dag
module IC = Wl_dag.Internal_cycle
module Prng = Wl_util.Prng
module Figures = Wl_netgen.Figures
module Generators = Wl_netgen.Generators

let dag_of arcs n = Dag.of_digraph_exn (Digraph.of_arcs n arcs)

let test_fig3_has_one () =
  let d = Wl_core.Instance.dag (Figures.fig3 ()) in
  check "has internal cycle" true (IC.has_internal_cycle d);
  check_int "exactly one" 1 (IC.count_independent d)

let test_fig5_has_one () =
  List.iter
    (fun k ->
      let d = Figures.fig5_graph k in
      check_int "one internal cycle" 1 (IC.count_independent d))
    [ 2; 3; 5 ]

let test_havet_has_one () =
  check_int "havet one cycle" 1 (IC.count_independent (Figures.havet_graph ()))

let test_trees_have_none () =
  let rng = Prng.create 3 in
  for _ = 1 to 10 do
    let d = Generators.random_rooted_tree rng 30 in
    check "tree has none" false (IC.has_internal_cycle d);
    check_int "count zero" 0 (IC.count_independent d)
  done

let test_cycle_without_internality () =
  (* A diamond is an oriented cycle but its peak is a source and its valley
     a sink, so it is not internal. *)
  let d = dag_of [ (0, 1); (0, 2); (1, 3); (2, 3) ] 4 in
  check "diamond not internal" false (IC.has_internal_cycle d);
  (* Give the peak a predecessor and the valley a successor: now internal. *)
  let d2 = dag_of [ (0, 1); (0, 2); (1, 3); (2, 3); (4, 0); (3, 5) ] 6 in
  check "fed diamond internal" true (IC.has_internal_cycle d2);
  check_int "one" 1 (IC.count_independent d2)

let test_internality_needs_all_vertices () =
  (* Predecessor on the peak only: the valley is still a sink. *)
  let d = dag_of [ (0, 1); (0, 2); (1, 3); (2, 3); (4, 0) ] 5 in
  check "still not internal" false (IC.has_internal_cycle d)

let test_internal_vertices () =
  let d = dag_of [ (0, 1); (1, 2) ] 3 in
  check "middle vertex internal" true (IC.internal_vertex d 1);
  check "source not internal" false (IC.internal_vertex d 0);
  check "sink not internal" false (IC.internal_vertex d 2);
  check "list" true (IC.internal_vertices d = [ 1 ])

let find_matches_count =
  qtest "find = Some iff count_independent > 0" seed_gen (fun seed ->
      let d = Dag.of_digraph_exn (gnp_dag seed 12 0.25) in
      (IC.find d <> None) = (IC.count_independent d > 0))

let canonical_well_formed =
  qtest "canonical witness verifies" seed_gen (fun seed ->
      let d = Dag.of_digraph_exn (gnp_dag seed 12 0.3) in
      match IC.find_canonical d with
      | None -> true
      | Some can -> IC.verify_canonical d can)

let canonical_on_figures () =
  List.iter
    (fun k ->
      let d = Figures.fig5_graph k in
      match IC.find_canonical d with
      | None -> Alcotest.fail "fig5 should have an internal cycle"
      | Some can ->
        check "verified" true (IC.verify_canonical d can);
        check_int "k peaks" k (Array.length can.IC.b);
        check_int "2k arcs" (2 * k) (List.length (IC.arcs_of_canonical can)))
    [ 2; 3; 4 ]

let test_growth_preserves_count () =
  (* Pendant growth must not change the internal cycle count. *)
  let rng = Prng.create 11 in
  for _ = 1 to 10 do
    let d = Generators.upp_one_internal_cycle rng ~extra_vertices:20 () in
    check_int "still one" 1 (IC.count_independent d)
  done

let test_two_independent_cycles () =
  (* Two fed diamonds sharing nothing: count = 2. *)
  let arcs =
    [ (0, 1); (0, 2); (1, 3); (2, 3); (8, 0); (3, 9) ]
    @ [ (4, 5); (4, 6); (5, 7); (6, 7); (10, 4); (7, 11) ]
  in
  let d = dag_of arcs 12 in
  check_int "two cycles" 2 (IC.count_independent d)

let suite =
  [
    ( "internal-cycle",
      [
        Alcotest.test_case "fig3 has one" `Quick test_fig3_has_one;
        Alcotest.test_case "fig5 has one" `Quick test_fig5_has_one;
        Alcotest.test_case "havet has one" `Quick test_havet_has_one;
        Alcotest.test_case "trees have none" `Quick test_trees_have_none;
        Alcotest.test_case "internality matters" `Quick test_cycle_without_internality;
        Alcotest.test_case "all vertices must be internal" `Quick
          test_internality_needs_all_vertices;
        Alcotest.test_case "internal vertices" `Quick test_internal_vertices;
        find_matches_count;
        canonical_well_formed;
        Alcotest.test_case "canonical on figures" `Quick canonical_on_figures;
        Alcotest.test_case "pendant growth preserves count" `Quick
          test_growth_preserves_count;
        Alcotest.test_case "two independent cycles" `Quick test_two_independent_cycles;
      ] );
  ]
