lib/conflict/ugraph.ml: Array Format List Wl_util
