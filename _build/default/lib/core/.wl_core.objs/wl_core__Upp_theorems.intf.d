lib/core/upp_theorems.mli: Instance
