(* Tests for the DOT and SVG renderers: structural sanity of the output
   (the images themselves are eyeballed via examples/gap_gallery.exe). *)

open Helpers
open Wl_core
module Dot = Wl_digraph.Dot
module Svg = Wl_digraph.Svg

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let count_occurrences s sub =
  let n = String.length s and m = String.length sub in
  let rec go i acc =
    if i + m > n then acc
    else if String.sub s i m = sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  if m = 0 then 0 else go 0 0

let colored_instance () =
  let inst = Wl_netgen.Figures.fig3 () in
  let report = Solver.solve inst in
  let pairs =
    List.mapi (fun i p -> (p, report.Solver.assignment.(i))) (Instance.paths_list inst)
  in
  (inst, pairs)

let test_dot_plain () =
  let inst, _ = colored_instance () in
  let dot = Dot.of_digraph (Instance.graph inst) in
  check "digraph header" true (contains dot "digraph");
  check "has arrow syntax" true (contains dot "->");
  check_int "one node line per vertex" 5 (count_occurrences dot "label=");
  check "label present" true (contains dot "a1")

let test_dot_colored () =
  let inst, pairs = colored_instance () in
  let dot = Dot.of_colored_paths (Instance.graph inst) pairs in
  check "pen colors present" true (contains dot "penwidth");
  (* Every arc of fig3 carries two dipaths, so no gray arcs remain. *)
  check "no unused arcs" false (contains dot "#cccccc")

let test_dot_escapes () =
  let g = Wl_digraph.Digraph.create () in
  let a = Wl_digraph.Digraph.add_vertex ~label:"we\"ird" g in
  let b = Wl_digraph.Digraph.add_vertex g in
  ignore (Wl_digraph.Digraph.add_arc g a b);
  let dot = Dot.of_digraph g in
  check "escaped quote" true (contains dot "we\\\"ird")

let test_svg_plain () =
  let inst, _ = colored_instance () in
  let svg = Svg.of_digraph (Instance.graph inst) in
  check "svg header" true (contains svg "<svg");
  check "closes" true (contains svg "</svg>");
  check_int "one circle per vertex" 5 (count_occurrences svg "<circle");
  check_int "arcs + arrow marker paths" 5
    (count_occurrences svg "marker-end=\"url(#arrow)\"");
  check "text labels" true (contains svg ">a1</text>")

let test_svg_colored () =
  let inst, pairs = colored_instance () in
  let svg = Svg.of_colored_paths (Instance.graph inst) pairs in
  (* 5 dipaths x 2 arcs each = 10 colored strokes. *)
  check_int "colored strokes" 10 (count_occurrences svg "stroke-width=\"2\"");
  check "wavelength palette used" true (contains svg "#e41a1c")

let test_svg_escaping () =
  let g = Wl_digraph.Digraph.create () in
  let a = Wl_digraph.Digraph.add_vertex ~label:"x<y&z" g in
  let b = Wl_digraph.Digraph.add_vertex g in
  ignore (Wl_digraph.Digraph.add_arc g a b);
  let svg = Svg.of_digraph g in
  check "angle escaped" true (contains svg "x&lt;y&amp;z")

let renders_never_crash =
  qtest "renderers accept arbitrary instances" seed_gen ~count:25 (fun seed ->
      let inst = random_instance seed in
      let g = Instance.graph inst in
      let pairs = List.mapi (fun i p -> (p, i)) (Instance.paths_list inst) in
      String.length (Dot.of_colored_paths g pairs) > 0
      && String.length (Svg.of_colored_paths g pairs) > 0)

let test_file_write () =
  let tmp = Filename.temp_file "wl_svg" ".svg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let inst, pairs = colored_instance () in
      Svg.write_file tmp (Svg.of_colored_paths (Instance.graph inst) pairs);
      let ic = open_in tmp in
      let len = in_channel_length ic in
      close_in ic;
      check "non-empty file" true (len > 100))

let suite =
  [
    ( "render",
      [
        Alcotest.test_case "dot plain" `Quick test_dot_plain;
        Alcotest.test_case "dot colored" `Quick test_dot_colored;
        Alcotest.test_case "dot escaping" `Quick test_dot_escapes;
        Alcotest.test_case "svg plain" `Quick test_svg_plain;
        Alcotest.test_case "svg colored" `Quick test_svg_colored;
        Alcotest.test_case "svg escaping" `Quick test_svg_escaping;
        renders_never_crash;
        Alcotest.test_case "file write" `Quick test_file_write;
      ] );
  ]
