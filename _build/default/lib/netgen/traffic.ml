open Wl_core
module Prng = Wl_util.Prng

let uniform rng dag k = Routing.random_requests rng dag k

let hotspot rng dag ~hubs ~bias k =
  if hubs < 1 then invalid_arg "Traffic.hotspot: hubs >= 1";
  let pairs = Array.of_list (Routing.all_to_all dag) in
  if Array.length pairs = 0 then []
  else begin
    let n = Wl_dag.Dag.n_vertices dag in
    let hub_set = Prng.sample_without_replacement rng hubs n in
    let is_hub v = List.mem v hub_set in
    let hub_pairs =
      Array.of_list
        (List.filter (fun (x, y) -> is_hub x || is_hub y) (Array.to_list pairs))
    in
    List.init k (fun _ ->
        if Array.length hub_pairs > 0 && Prng.bernoulli rng bias then
          Prng.choose rng hub_pairs
        else Prng.choose rng pairs)
  end

let batches rng dag ~batch_size ~n_batches model =
  List.init n_batches (fun _ -> model rng dag batch_size)
