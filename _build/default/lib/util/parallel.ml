let default_domains () = min 8 (Domain.recommended_domain_count ())

let map_array ?domains f input =
  let n = Array.length input in
  let d = match domains with Some d -> d | None -> default_domains () in
  if d <= 1 || n <= 1 then Array.map f input
  else begin
    let d = min d n in
    let output = Array.make n None in
    let chunk_size = (n + d - 1) / d in
    let work lo =
      let hi = min n (lo + chunk_size) in
      for i = lo to hi - 1 do
        output.(i) <- Some (f input.(i))
      done
    in
    let handles =
      List.init (d - 1) (fun k -> Domain.spawn (fun () -> work ((k + 1) * chunk_size)))
    in
    work 0;
    List.iter Domain.join handles;
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Parallel.map_array: missing result")
      output
  end

let init ?domains n f = map_array ?domains f (Array.init n Fun.id)

let for_all ?domains p input =
  Array.for_all Fun.id (map_array ?domains p input)

let count ?domains p input =
  Array.fold_left
    (fun acc b -> if b then acc + 1 else acc)
    0
    (map_array ?domains p input)
