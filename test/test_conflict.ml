(* Tests for the undirected graph substrate: coloring, cliques, probes. *)

open Helpers
module Ugraph = Wl_conflict.Ugraph
module Coloring = Wl_conflict.Coloring
module Clique = Wl_conflict.Clique
module Exact = Wl_conflict.Exact
module Graph_props = Wl_conflict.Graph_props

let cycle n =
  Ugraph.of_edges n (List.init n (fun i -> (i, (i + 1) mod n)))

let complete n =
  let es = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      es := (u, v) :: !es
    done
  done;
  Ugraph.of_edges n !es

let test_ugraph_basics () =
  let g = Ugraph.create 4 in
  Ugraph.add_edge g 0 1;
  Ugraph.add_edge g 1 0;
  check_int "dedup edges" 1 (Ugraph.n_edges g);
  check "mem both ways" true (Ugraph.mem_edge g 1 0);
  check_int "degree" 1 (Ugraph.degree g 0);
  Alcotest.check_raises "self loop" (Invalid_argument "Ugraph.add_edge: self-loop")
    (fun () -> Ugraph.add_edge g 2 2);
  check "edges canonical" true (Ugraph.edges g = [ (0, 1) ])

let test_complement () =
  let g = cycle 5 in
  let c = Ugraph.complement g in
  check_int "complement edges" (10 - 5) (Ugraph.n_edges c);
  check "no overlap" true
    (List.for_all (fun (u, v) -> not (Ugraph.mem_edge g u v)) (Ugraph.edges c))

let colorings_valid =
  qtest "greedy/WP/DSATUR produce valid colorings"
    QCheck2.Gen.(pair seed_gen (int_range 1 25))
    (fun (seed, n) ->
      let g = random_ugraph seed n 0.35 in
      Coloring.is_valid g (Coloring.greedy g)
      && Coloring.is_valid g (Coloring.greedy_desc_degree g)
      && Coloring.is_valid g (Coloring.dsatur g))

(* The contract the parallel bench arm and engine rely on: dsatur_par is
   the SAME per-vertex coloring as dsatur, not merely one of equal size
   — at 1 domain (sequential fallback) and at several (real split). *)
let dsatur_par_identical =
  qtest "dsatur_par = dsatur per vertex (1 and 4 domains)"
    QCheck2.Gen.(pair seed_gen (int_range 0 40))
    (fun (seed, n) ->
      let g = random_ugraph seed n 0.15 in
      let reference = Coloring.dsatur g in
      Coloring.dsatur_par ~domains:1 g = reference
      && Coloring.dsatur_par ~domains:4 g = reference)

(* Multi-component shape mirroring the bench arm: disjoint dense blocks,
   where the merge order and component-local numbering must reproduce
   the global sequential tie-breaks exactly. *)
let test_dsatur_par_components () =
  let block = 12 and comps = 5 in
  let n = comps * block in
  let g = Ugraph.create n in
  let rng = Wl_util.Prng.create 42 in
  for c = 0 to comps - 1 do
    let base = c * block in
    for u = 0 to block - 1 do
      for v = u + 1 to block - 1 do
        if Wl_util.Prng.int rng 100 < 50 then
          Ugraph.add_edge g (base + u) (base + v)
      done
    done
  done;
  let reference = Coloring.dsatur g in
  check "valid" true (Coloring.is_valid g reference);
  List.iter
    (fun domains ->
      check
        (Printf.sprintf "identical at %d domains" domains)
        true
        (Coloring.dsatur_par ~domains g = reference))
    [ 1; 2; 4 ]

let exact_matches_brute =
  qtest "exact chromatic = brute force (tiny graphs)"
    QCheck2.Gen.(pair seed_gen (int_range 1 7))
    (fun (seed, n) ->
      let g = random_ugraph seed n 0.5 in
      Exact.chromatic_number g = brute_chromatic g)

let exact_below_heuristics =
  qtest "chromatic <= heuristics; optimal coloring valid & tight"
    QCheck2.Gen.(pair seed_gen (int_range 1 16))
    (fun (seed, n) ->
      let g = random_ugraph seed n 0.4 in
      let chi = Exact.chromatic_number g in
      let c = Exact.optimal_coloring g in
      Coloring.is_valid g c
      && Coloring.n_colors (Coloring.normalize c) = chi
      && chi <= Coloring.n_colors (Coloring.normalize (Coloring.best_heuristic g)))

let k_colorable_boundary =
  qtest "k_colorable: None below chi, Some at chi"
    QCheck2.Gen.(pair seed_gen (int_range 1 10))
    (fun (seed, n) ->
      let g = random_ugraph seed n 0.5 in
      let chi = Exact.chromatic_number g in
      (chi = 0 || Exact.k_colorable g (chi - 1) = None)
      && Exact.k_colorable g chi <> None)

let clique_matches_brute =
  qtest "max clique = brute force (tiny graphs)"
    QCheck2.Gen.(pair seed_gen (int_range 1 10))
    (fun (seed, n) ->
      let g = random_ugraph seed n 0.5 in
      let c = Clique.max_clique g in
      Ugraph.is_clique g c && List.length c = brute_clique_number g)

let independent_is_clique_of_complement =
  qtest "independence number via complement"
    QCheck2.Gen.(pair seed_gen (int_range 1 10))
    (fun (seed, n) ->
      let g = random_ugraph seed n 0.4 in
      let s = Clique.max_independent_set g in
      Ugraph.is_independent g s
      && List.length s = brute_clique_number (Ugraph.complement g))

let greedy_clique_is_clique =
  qtest "greedy clique is a clique" QCheck2.Gen.(pair seed_gen (int_range 1 20))
    (fun (seed, n) ->
      let g = random_ugraph seed n 0.4 in
      Ugraph.is_clique g (Clique.greedy_clique g))

let petersen () =
  (* Outer C5, inner pentagram, spokes. *)
  Ugraph.of_edges 10
    ([ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ]
    @ [ (5, 7); (7, 9); (9, 6); (6, 8); (8, 5) ]
    @ List.init 5 (fun i -> (i, i + 5)))

let test_known_chromatics () =
  check_int "C5" 3 (Exact.chromatic_number (cycle 5));
  check_int "C6" 2 (Exact.chromatic_number (cycle 6));
  check_int "K7" 7 (Exact.chromatic_number (complete 7));
  check_int "empty" 1 (Exact.chromatic_number (Ugraph.create 5));
  check_int "null" 0 (Exact.chromatic_number (Ugraph.create 0));
  check_int "Petersen chi" 3 (Exact.chromatic_number (petersen ()));
  check_int "Petersen clique" 2 (Clique.clique_number (petersen ()));
  check_int "Petersen alpha" 4 (Clique.independence_number (petersen ()));
  check "Petersen odd girth 5" true (Graph_props.odd_girth (petersen ()) = Some 5);
  (* Wagner graph (Theorem 7's conflict graph), direct construction. *)
  let wagner =
    Ugraph.of_edges 8
      (List.init 8 (fun i -> (i, (i + 1) mod 8))
      @ List.init 4 (fun i -> (i, i + 4)))
  in
  check_int "Wagner chi" 3 (Exact.chromatic_number wagner);
  check_int "Wagner alpha" 3 (Clique.independence_number wagner)

let test_k23_probe () =
  (* K_{2,3}: 0,1 vs 2,3,4. *)
  let g = Ugraph.of_edges 5 [ (0, 2); (0, 3); (0, 4); (1, 2); (1, 3); (1, 4) ] in
  (match Graph_props.find_k23 g with
  | Some (pair, triple) ->
    check "pair size" true (List.length pair = 2);
    check "triple size" true (List.length triple = 3);
    check "complete bipartite" true
      (List.for_all (fun u -> List.for_all (fun v -> Ugraph.mem_edge g u v) triple) pair)
  | None -> Alcotest.fail "K23 not found");
  check "C6 has no K23" false (Graph_props.has_k23 (cycle 6));
  check "K5 has no independent-sides K23" false (Graph_props.has_k23 (complete 5));
  (* K_{2,4} contains it. *)
  let k24 =
    Ugraph.of_edges 6
      [ (0, 2); (0, 3); (0, 4); (0, 5); (1, 2); (1, 3); (1, 4); (1, 5) ]
  in
  check "K24 has K23" true (Graph_props.has_k23 k24)

let test_k5_minus_probe () =
  check "K5 itself does not qualify" true
    (Graph_props.find_k5_minus_two_independent_edges (complete 5) = None);
  (* K5 minus two adjacent edges does not contain K5 minus two
     independent ones. *)
  let g = complete 5 in
  let h = Ugraph.create 5 in
  List.iter
    (fun (u, v) -> if not ((u, v) = (0, 1) || (u, v) = (0, 2)) then Ugraph.add_edge h u v)
    (Ugraph.edges g);
  check "adjacent removals disqualify" true
    (Graph_props.find_k5_minus_two_independent_edges h = None);
  (* Removing two independent edges qualifies. *)
  let h2 = Ugraph.create 5 in
  List.iter
    (fun (u, v) -> if not ((u, v) = (0, 1) || (u, v) = (2, 3)) then Ugraph.add_edge h2 u v)
    (Ugraph.edges g);
  check "independent removals qualify" true
    (Graph_props.find_k5_minus_two_independent_edges h2 <> None)

let test_cycle_probe () =
  check "C5 is cycle" true (Graph_props.is_cycle_graph (cycle 5));
  check "K4 not cycle" false (Graph_props.is_cycle_graph (complete 4));
  check "disjoint cycles not one cycle" false
    (Graph_props.is_cycle_graph
       (Ugraph.of_edges 6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ]));
  check "lengths" true
    (Graph_props.induced_cycle_lengths
       (Ugraph.of_edges 7 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 6); (6, 3) ])
    = [ 3; 4 ])

let dimacs_roundtrip =
  qtest "DIMACS roundtrip" QCheck2.Gen.(pair seed_gen (int_range 0 20))
    (fun (seed, n) ->
      let g = random_ugraph seed n 0.3 in
      match Wl_conflict.Dimacs.of_string (Wl_conflict.Dimacs.to_string ~comment:"test" g) with
      | Ok g' -> Ugraph.equal g g'
      | Error _ -> false)

let test_dimacs_errors () =
  let bad expected text =
    match Wl_conflict.Dimacs.of_string text with
    | Ok _ -> Alcotest.failf "expected failure: %s" expected
    | Error msg -> check expected true (String.length msg > 0)
  in
  bad "no header" "e 1 2\n";
  bad "missing header" "c nothing\n";
  bad "duplicate header" "p edge 2 0\np edge 2 0\n";
  bad "bad edge" "p edge 2 1\ne 1 5\n";
  bad "unknown" "p edge 1 0\nq zzz\n";
  match Wl_conflict.Dimacs.of_string "c ok\np edge 3 1\ne 1 3\n" with
  | Ok g ->
    check "parsed edge" true (Ugraph.mem_edge g 0 2);
    check_int "vertices" 3 (Ugraph.n_vertices g)
  | Error msg -> Alcotest.failf "should parse: %s" msg

let test_odd_girth () =
  check "C5 odd girth 5" true (Graph_props.odd_girth (cycle 5) = Some 5);
  check "C6 bipartite" true (Graph_props.odd_girth (cycle 6) = None);
  check "K4 triangle" true (Graph_props.odd_girth (complete 4) = Some 3)

let suite =
  [
    ( "conflict-graph",
      [
        Alcotest.test_case "ugraph basics" `Quick test_ugraph_basics;
        Alcotest.test_case "complement" `Quick test_complement;
        colorings_valid;
        dsatur_par_identical;
        Alcotest.test_case "dsatur_par on disjoint blocks" `Quick
          test_dsatur_par_components;
        exact_matches_brute;
        exact_below_heuristics;
        k_colorable_boundary;
        clique_matches_brute;
        independent_is_clique_of_complement;
        greedy_clique_is_clique;
        Alcotest.test_case "known chromatic numbers" `Quick test_known_chromatics;
        Alcotest.test_case "K23 probe" `Quick test_k23_probe;
        Alcotest.test_case "K5-minus probe" `Quick test_k5_minus_probe;
        Alcotest.test_case "cycle probes" `Quick test_cycle_probe;
        dimacs_roundtrip;
        Alcotest.test_case "dimacs errors" `Quick test_dimacs_errors;
        Alcotest.test_case "odd girth" `Quick test_odd_girth;
      ] );
  ]
