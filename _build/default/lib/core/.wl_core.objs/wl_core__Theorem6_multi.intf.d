lib/core/theorem6_multi.mli: Assignment Instance Theorem6
