lib/conflict/clique.mli: Ugraph
