lib/core/solver.ml: Assignment Conflict_of Format Instance List Load Theorem1 Theorem6 Theorem6_multi Wl_conflict Wl_dag
