(** The umbrella facade: the whole public surface under one [Wl] root.

    [open Wl] (or link the [wavelength] library) and every stable module is
    one alias away — [Wl.Digraph], [Wl.Solver], [Wl.Engine], … — without
    remembering which internal library ([wavelength.core],
    [wavelength.engine], …) a module lives in.  The aliases are the same
    modules, not wrappers: values and types are interchangeable with code
    that links the sub-libraries directly.

    The facade is the compatibility surface: modules reachable from here
    keep their interfaces stable across minor versions; the [Wl_*]
    libraries underneath may reorganize. *)

(** {1 Graphs and paths} *)

module Digraph = Wl_digraph.Digraph
module Dipath = Wl_digraph.Dipath
module Traversal = Wl_digraph.Traversal
module Dot = Wl_digraph.Dot
module Svg = Wl_digraph.Svg

(** {1 DAG structure theory} *)

module Dag = Wl_dag.Dag
module Classify = Wl_dag.Classify
module Internal_cycle = Wl_dag.Internal_cycle
module Upp = Wl_dag.Upp

(** {1 Instances, solving, serialization} *)

module Error = Wl_core.Error
module Instance = Wl_core.Instance
module Load = Wl_core.Load
module Assignment = Wl_core.Assignment
module Solver = Wl_core.Solver
module Serial = Wl_core.Serial
module Routing = Wl_core.Routing
module Grooming = Wl_core.Grooming
module Certificate = Wl_core.Certificate
module Bounds = Wl_core.Bounds

(** {1 Incremental sessions} *)

module Engine = Wl_engine.Engine
module Script = Wl_engine.Script

(** {1 Generators and observability} *)

module Figures = Wl_netgen.Figures
module Generators = Wl_netgen.Generators
module Path_gen = Wl_netgen.Path_gen
module Traffic = Wl_netgen.Traffic
module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace
module Prng = Wl_util.Prng

(** {1 Wavelength assignment as a service} *)

module Proto = Wl_serve.Proto
module Wire = Wl_serve.Wire
module Shard = Wl_serve.Shard
module Server = Wl_serve.Server
module Client = Wl_serve.Client

(** {1 Convenience} *)

let solve = Wl_core.Solver.solve
let solve_result = Wl_core.Solver.solve_result
let connect = Wl_serve.Client.connect
let session = Wl_serve.Client.session
let local = Wl_serve.Client.local

let version = 2
(** Serialization format version this build writes by default
    ({!Serial.current_version}). *)
