open Wl_digraph

type t = {
  n_vertices : int;
  n_arcs : int;
  n_sources : int;
  n_sinks : int;
  n_internal_cycles : int;
  is_upp : bool;
  is_rooted_forest : bool;
  longest_path : int;
}

let is_rooted_forest d =
  let g = Dag.graph d in
  List.for_all (fun v -> Digraph.in_degree g v <= 1) (Digraph.vertices g)

let classify d =
  {
    n_vertices = Dag.n_vertices d;
    n_arcs = Dag.n_arcs d;
    n_sources = List.length (Dag.sources d);
    n_sinks = List.length (Dag.sinks d);
    n_internal_cycles = Internal_cycle.count_independent d;
    is_upp = Upp.is_upp d;
    is_rooted_forest = is_rooted_forest d;
    longest_path = Dag.longest_path_length d;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>vertices: %d@,arcs: %d@,sources: %d@,sinks: %d@,internal cycles: \
     %d@,UPP: %b@,rooted forest: %b@,longest path: %d@]"
    t.n_vertices t.n_arcs t.n_sources t.n_sinks t.n_internal_cycles t.is_upp
    t.is_rooted_forest t.longest_path
