(** Random DAG generators, conditioned on the paper's structural classes.

    All generators are deterministic functions of the supplied PRNG state.
    The repair loops (removing an arc of a detected internal cycle or of a
    UPP violation) terminate because each repair strictly removes arcs. *)

open Wl_dag

val gnp_dag : Wl_util.Prng.t -> int -> float -> Dag.t
(** Random DAG: every pair [(i, j)] with [i < j] (in a hidden random vertex
    order) gets an arc with probability [p]. *)

val layered : Wl_util.Prng.t -> layers:int -> width:int -> p:float -> Dag.t
(** Layered DAG (layers of [width] vertices, arcs between consecutive
    layers with probability [p]); every non-extremal layer vertex is given
    at least one in- and one out-arc so the layer structure is genuine. *)

val without_internal_cycle : Wl_util.Prng.t -> Dag.t -> Dag.t
(** Removes random arcs of internal cycles until none remains — Theorem 1
    territory. *)

val gnp_no_internal_cycle : Wl_util.Prng.t -> int -> float -> Dag.t

val make_upp : Wl_util.Prng.t -> Dag.t -> Dag.t
(** Removes arcs until the unique-dipath property holds. *)

val gnp_upp : Wl_util.Prng.t -> int -> float -> Dag.t

val random_rooted_tree : Wl_util.Prng.t -> int -> Dag.t
(** Uniform random recursive out-tree on [n] vertices: vertex [i >= 1]
    points from a uniform parent [< i].  Rooted trees are the paper's
    easiest [w = pi] class. *)

val upp_one_internal_cycle :
  Wl_util.Prng.t ->
  ?k:int ->
  ?segment_max:int ->
  ?extra_vertices:int ->
  unit ->
  Dag.t
(** Theorem 6 territory: an internal cycle with [k] peaks/valleys (default
    random in [2, 4]), segments subdivided to random lengths ([<=
    segment_max], default 3), pendant predecessors/successors making it
    internal, then [extra_vertices] (default 8) random pendant tree vertices
    (each new vertex attached by a single arc, which preserves both the UPP
    property and the internal-cycle count). *)

val upp_internal_cycles :
  Wl_util.Prng.t ->
  ?cycles:int ->
  ?k:int ->
  ?segment_max:int ->
  ?extra_vertices:int ->
  unit ->
  Dag.t
(** Like {!upp_one_internal_cycle} but with [cycles] (default 2) gadgets
    bridged in series — a UPP-DAG with exactly [cycles] independent internal
    cycles, the regime of the paper's closing remark
    ([w <= ceil-iterated (4/3)^C pi]). *)

val backbone : Wl_util.Prng.t -> pops:int -> levels:int -> Dag.t
(** A synthetic optical-backbone-like DAG: [pops] points of presence per
    level, [levels] levels west-to-east, dense consecutive-level links plus
    sparse express links skipping one level.  Used by the example
    application; paper used none (it is a theory paper), so this is the
    documented workload substitution. *)
