(** The paper's concluding problem: for a given number of wavelengths [w],
    satisfy as many dipaths of a family as possible.

    On a DAG without internal cycle, Theorem 1 turns the wavelength
    constraint into a pure load constraint — a subfamily is satisfiable
    with [w] wavelengths iff its load is at most [w] ("Our theorem shows
    that we have only to compute the load").  This module solves the
    resulting selection problem:

    {ul
    {- {!exact}: branch and bound, exact for moderate families;}
    {- {!greedy}: shortest-first greedy, fast at any scale;}
    {- {!on_line}: the classic [w]-track interval scheduling greedy, exact
       in O(n log n) when the digraph is a directed line (the "grooming on
       the path" setting of the paper's reference [3]).}}

    The paper notes the rooted-tree case "appears already as a difficult
    one"; accordingly only the line is given a specialized exact solver. *)

type selection = {
  selected : bool array;  (** per family index *)
  size : int;
  load : int;  (** load of the selected subfamily, always [<= w] *)
}

val load_of_subfamily : Instance.t -> bool array -> int

val greedy : Instance.t -> w:int -> selection
(** Considers dipaths by increasing arc count (ties by index) and keeps
    each one that leaves every arc's load at most [w]. *)

val exact : ?node_limit:int -> Instance.t -> w:int -> selection option
(** Optimal selection by branch and bound ([None] if the search exceeds
    [node_limit] nodes, default [2_000_000]). *)

val on_line : Instance.t -> w:int -> selection option
(** Exact and fast when the underlying digraph is a directed line
    ([None] otherwise): sort by right endpoint, keep an interval whenever
    fewer than [w] kept intervals cover some arc of it — the standard
    exchange argument shows this maximizes the count. *)

val is_line : Wl_dag.Dag.t -> bool
(** Is the digraph a single directed path covering all vertices? *)

val satisfy : Instance.t -> w:int -> (selection * Assignment.t) option
(** End-to-end: picks a subfamily (exact where feasible, greedy at scale,
    line solver when applicable) and wavelength-assigns it within [w]
    colors.  Without internal cycles the first selection always fits
    (Theorem 1: load = wavelengths); with them the load target is lowered
    until the coloring fits, so the result is [Some] for every [w >= 0]
    (possibly the empty selection).  The assignment array has one entry per
    {e selected} dipath, in family order.

    On internal-cycle-free DAGs the selection is a {e maximum}
    [w]-satisfiable subfamily whenever the underlying selector was exact
    (line solver, or branch and bound within its budget) — that is
    precisely the paper's concluding reduction.  On DAGs with internal
    cycles the result is feasible but can be smaller than optimal
    (satisfiability is no longer a pure load condition there; the paper
    leaves that regime open). *)
