module Classify = Wl_dag.Classify
module Coloring = Wl_conflict.Coloring
module Exact = Wl_conflict.Exact

type method_used =
  | Theorem_1
  | Theorem_6
  | Theorem_6_iterated
  | Exact_coloring
  | Heuristic

type report = {
  classification : Classify.t;
  pi : int;
  lower_bound : int;
  assignment : Assignment.t;
  n_wavelengths : int;
  method_used : method_used;
  optimal : bool;
}

let method_name = function
  | Theorem_1 -> "theorem-1"
  | Theorem_6 -> "theorem-6"
  | Theorem_6_iterated -> "theorem-6-iterated"
  | Exact_coloring -> "exact-coloring"
  | Heuristic -> "heuristic"

let finish classification pi lower assignment method_used =
  let assignment = Assignment.normalize assignment in
  let n_wavelengths = Assignment.n_wavelengths assignment in
  {
    classification;
    pi;
    lower_bound = lower;
    assignment;
    n_wavelengths;
    method_used;
    optimal = n_wavelengths = lower;
  }

let solve ?(exact_limit = 24) inst =
  let classification = Classify.classify (Instance.dag inst) in
  let pi = Load.pi inst in
  let small = Instance.n_paths inst <= exact_limit in
  if classification.Classify.n_internal_cycles = 0 then
    (* Theorem 1: optimal and equal to the load. *)
    finish classification pi pi (Theorem1.color inst) Theorem_1
  else if classification.Classify.is_upp && classification.Classify.n_internal_cycles = 1
  then begin
    let assignment = Theorem6.color ~check:false inst in
    (* On a UPP-DAG the clique number equals pi (Property 3), so pi is the
       natural lower bound; a small instance gets the exact optimum instead. *)
    if small then
      let cg = Conflict_of.build inst in
      let chi = Exact.chromatic_number cg in
      let exact =
        match Exact.k_colorable cg chi with Some c -> c | None -> assert false
      in
      if chi < Assignment.n_wavelengths (Assignment.normalize assignment) then
        finish classification pi chi (Assignment.of_conflict_coloring exact)
          Exact_coloring
      else finish classification pi chi assignment Theorem_6
    else finish classification pi pi assignment Theorem_6
  end
  else if
    classification.Classify.is_upp
    && classification.Classify.n_internal_cycles >= 2
    && not small
  then begin
    (* The iterated Theorem 6 recursion; DSATUR may still beat it on dense
       conflict graphs, so keep the better of the two. *)
    let assignment = Theorem6_multi.color ~check:false inst in
    let cg = Conflict_of.build inst in
    let heuristic = Coloring.best_heuristic cg in
    if
      Assignment.n_wavelengths (Assignment.normalize heuristic)
      < Assignment.n_wavelengths (Assignment.normalize assignment)
    then
      finish classification pi pi
        (Assignment.of_conflict_coloring heuristic)
        Heuristic
    else finish classification pi pi assignment Theorem_6_iterated
  end
  else if small then begin
    let cg = Conflict_of.build inst in
    let chi = Exact.chromatic_number cg in
    let coloring =
      match Exact.k_colorable cg chi with Some c -> c | None -> assert false
    in
    finish classification pi chi (Assignment.of_conflict_coloring coloring)
      Exact_coloring
  end
  else begin
    let cg = Conflict_of.build inst in
    let coloring = Coloring.best_heuristic cg in
    let lower = max pi (List.length (Wl_conflict.Clique.greedy_clique cg)) in
    finish classification pi lower (Assignment.of_conflict_coloring coloring)
      Heuristic
  end

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>method: %s@,load pi: %d@,wavelengths: %d@,lower bound: %d@,optimal: \
     %b@,%a@]"
    (method_name r.method_used)
    r.pi r.n_wavelengths r.lower_bound r.optimal Classify.pp r.classification
