test/test_conflict.ml: Alcotest Helpers List QCheck2 String Wl_conflict
