lib/core/upp_theorems.ml: Array Conflict_of Dipath Instance Load Wl_conflict Wl_digraph
