(** Validated directed acyclic graphs.

    A [Dag.t] wraps a {!Wl_digraph.Digraph.t} together with a topological
    order, established once at construction; the wrapper is the precondition
    carrier for every algorithm in the paper (all of which assume a DAG). *)

open Wl_digraph

type t

val of_digraph : Digraph.t -> (t, string) result
(** Fails with a description (including a directed-cycle witness) when the
    graph is not acyclic. *)

val of_digraph_exn : Digraph.t -> t
(** Raises [Invalid_argument] on a cyclic graph.
    @deprecated Use {!of_digraph} — one result-typed form per operation is
    the API rule since the service split (see the table in {!module:Wl});
    this twin remains only for legacy callers and will go in the next
    major version. *)

val graph : t -> Digraph.t
(** The underlying digraph. Callers must not mutate it (adding arcs would
    invalidate the cached topological order). *)

val n_vertices : t -> int
val n_arcs : t -> int

val topological_order : t -> Digraph.vertex array
(** Fresh copy of the topological order (sources first). *)

val topo_position : t -> Digraph.vertex -> int
(** Position of a vertex in the cached topological order. *)

val compare_topo : t -> Digraph.vertex -> Digraph.vertex -> int
(** Order vertices by topological position. *)

val sources : t -> Digraph.vertex list
(** Vertices of in-degree 0, in topological order. *)

val sinks : t -> Digraph.vertex list
(** Vertices of out-degree 0, in topological order. *)

val longest_path_length : t -> int
(** Number of arcs on a longest dipath (0 for an arc-less graph). *)

val count_dipaths_from : t -> Digraph.vertex -> Wl_util.Saturating.t array
(** [count_dipaths_from d v] counts, for every vertex [w], the dipaths from
    [v] to [w] ([1] for [w = v]); counts saturate rather than overflow. *)

val count_dipaths : t -> Digraph.vertex -> Digraph.vertex -> Wl_util.Saturating.t
(** Number of distinct dipaths between two vertices. *)

val some_dipath : t -> Digraph.vertex -> Digraph.vertex -> Dipath.t option
(** Any dipath from [src] to [dst] with at least one arc ([None] when
    unreachable or [src = dst]). *)

val all_dipaths_between :
  ?limit:int -> t -> Digraph.vertex -> Digraph.vertex -> Dipath.t list
(** Enumerate the dipaths from [src] to [dst] (at most [limit] of them,
    default 64) in lexicographic successor order. *)

val arcs_by_tail_topo : t -> Digraph.arc array
(** All arc ids sorted by topological position of their tail (ties broken by
    arc id).  Scanning this array in reverse and inserting arcs one by one
    maintains the invariant of the Theorem 1 proof: the next arc to insert
    always leaves a source of the current partial graph. *)
