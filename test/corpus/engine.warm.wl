wl 2
dag 4
arc 0 1
arc 1 2
arc 1 3
path 0 1 2
path 1 3
