lib/digraph/dot.ml: Array Buffer Digraph Dipath Fun Hashtbl List Option Printf String
