(* Unit and property tests for the wl_util substrate. *)

open Helpers
module Prng = Wl_util.Prng
module Union_find = Wl_util.Union_find
module Bitset = Wl_util.Bitset
module Permutation = Wl_util.Permutation
module Saturating = Wl_util.Saturating
module Vec = Wl_util.Vec

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_differs_by_seed () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.int a 1_000_000 = Prng.int b 1_000_000 then incr same
  done;
  check "streams differ" true (!same < 5)

let prng_bounds =
  qtest "prng: int stays in bounds" QCheck2.Gen.(pair seed_gen (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let prng_int_in =
  qtest "prng: int_in inclusive range"
    QCheck2.Gen.(triple seed_gen (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, width) ->
      let rng = Prng.create seed in
      let v = Prng.int_in rng lo (lo + width) in
      v >= lo && v <= lo + width)

let prng_shuffle_permutes =
  qtest "prng: shuffle is a permutation" QCheck2.Gen.(pair seed_gen (int_range 0 40))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let a = Array.init n Fun.id in
      Prng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.init n Fun.id)

let prng_sample =
  qtest "prng: sample_without_replacement distinct and sorted"
    QCheck2.Gen.(pair seed_gen (int_range 0 30))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let k = if n = 0 then 0 else Prng.int rng (n + 1) in
      let s = Prng.sample_without_replacement rng k n in
      List.length s = k
      && List.sort_uniq compare s = s
      && List.for_all (fun v -> v >= 0 && v < n) s)

let test_prng_float_range () =
  let rng = Prng.create 5 in
  for _ = 1 to 1000 do
    let f = Prng.float rng 2.5 in
    check "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_prng_split_independent () =
  let a = Prng.create 9 in
  let b = Prng.split a in
  (* Sanity: both generators remain usable and differ. *)
  let xs = List.init 20 (fun _ -> Prng.int a 1000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1000) in
  check "split streams differ" true (xs <> ys)

(* --- Union_find --- *)

let test_union_find_basic () =
  let uf = Union_find.create 6 in
  check_int "initial classes" 6 (Union_find.count uf);
  check "fresh union" true (Union_find.union uf 0 1);
  check "redundant union closes cycle" false (Union_find.union uf 1 0);
  check "same" true (Union_find.same uf 0 1);
  check "not same" false (Union_find.same uf 0 2);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 1 2);
  check "transitively same" true (Union_find.same uf 0 3);
  check_int "classes after unions" 3 (Union_find.count uf)

let test_union_find_class_sizes () =
  let uf = Union_find.create 5 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 0 2);
  let sizes = List.map snd (Union_find.class_sizes uf) |> List.sort compare in
  check "sizes" true (sizes = [ 1; 1; 3 ])

let union_find_vs_reference =
  qtest "union_find agrees with reference partition"
    QCheck2.Gen.(pair seed_gen (int_range 1 20))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let uf = Union_find.create n in
      let classes = Array.init n (fun i -> i) in
      let relabel a b =
        Array.iteri (fun i c -> if c = b then classes.(i) <- a) classes
      in
      for _ = 1 to 2 * n do
        let a = Prng.int rng n and b = Prng.int rng n in
        ignore (Union_find.union uf a b);
        relabel classes.(a) classes.(b)
      done;
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if Union_find.same uf a b <> (classes.(a) = classes.(b)) then ok := false
        done
      done;
      !ok)

(* --- Bitset --- *)

let bitset_vs_reference =
  qtest "bitset ops agree with Set.Make(Int)"
    QCheck2.Gen.(pair seed_gen (int_range 1 200))
    (fun (seed, n) ->
      let module S = Set.Make (Int) in
      let rng = Prng.create seed in
      let b1 = Bitset.create n and b2 = Bitset.create n in
      let s1 = ref S.empty and s2 = ref S.empty in
      for _ = 1 to n do
        let v = Prng.int rng n in
        if Prng.bool rng then begin
          Bitset.add b1 v;
          s1 := S.add v !s1
        end
        else begin
          Bitset.add b2 v;
          s2 := S.add v !s2
        end
      done;
      let agree bs s = Bitset.elements bs = S.elements s in
      agree (Bitset.inter b1 b2) (S.inter !s1 !s2)
      && agree (Bitset.union b1 b2) (S.union !s1 !s2)
      && agree (Bitset.diff b1 b2) (S.diff !s1 !s2)
      && Bitset.cardinal b1 = S.cardinal !s1
      && Bitset.subset b1 (Bitset.union b1 b2))

let test_bitset_fill_clear () =
  let b = Bitset.create 130 in
  Bitset.fill b;
  check_int "fill cardinal" 130 (Bitset.cardinal b);
  check "mem last" true (Bitset.mem b 129);
  Bitset.clear b;
  check "empty after clear" true (Bitset.is_empty b);
  check "first of empty" true (Bitset.first b = None);
  Bitset.add b 77;
  check "first" true (Bitset.first b = Some 77)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add b 10)

let test_bitset_iter_order () =
  let b = Bitset.of_list 100 [ 93; 2; 67; 2; 40 ] in
  check "elements sorted unique" true (Bitset.elements b = [ 2; 40; 67; 93 ])

(* --- Permutation --- *)

let test_permutation_validation () =
  Alcotest.check_raises "not injective"
    (Invalid_argument "Permutation.of_array: not injective") (fun () ->
      ignore (Permutation.of_array [| 0; 0; 2 |]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Permutation.of_array: out of range") (fun () ->
      ignore (Permutation.of_array [| 0; 3; 1 |]))

let permutation_inverse =
  qtest "permutation: inverse composes to identity" QCheck2.Gen.(pair seed_gen (int_range 0 30))
    (fun (seed, n) ->
      let p = Permutation.of_array (Prng.permutation (Prng.create seed) n) in
      Permutation.compose p (Permutation.inverse p) = Permutation.identity n)

let permutation_cycles_cover =
  qtest "permutation: cycles partition the domain"
    QCheck2.Gen.(pair seed_gen (int_range 1 30))
    (fun (seed, n) ->
      let p = Permutation.of_array (Prng.permutation (Prng.create seed) n) in
      let cycles = Permutation.cycles p in
      let all = List.concat cycles in
      List.sort compare all = List.init n Fun.id
      && List.for_all
           (fun cyc ->
             (* consecutive elements follow the permutation *)
             let arr = Array.of_list cyc in
             let k = Array.length arr in
             let ok = ref true in
             for i = 0 to k - 1 do
               if Permutation.apply p arr.(i) <> arr.((i + 1) mod k) then ok := false
             done;
             !ok)
           cycles)

let test_cycle_type () =
  let p = Permutation.of_array [| 1; 0; 2; 4; 5; 3 |] in
  check "cycle type" true (Permutation.cycle_type p = [ (1, 1); (2, 1); (3, 1) ])

let test_of_two_bijections () =
  (* f sends 0,1,2 to colors 10,20,30; g to 20,30,10: sigma is a 3-cycle. *)
  let sigma = Permutation.of_two_bijections [| 10; 20; 30 |] [| 20; 30; 10 |] in
  check "3-cycle" true (Permutation.cycle_type sigma = [ (3, 1) ]);
  let id = Permutation.of_two_bijections [| 7; 5 |] [| 7; 5 |] in
  check "identity" true (Permutation.cycle_type id = [ (1, 2) ])

(* --- Saturating --- *)

let test_saturating () =
  let open Saturating in
  check_int "add" 5 (to_int (add (of_int 2) (of_int 3)));
  check "saturates add" true (is_saturated (add (of_int cap) one));
  check "saturates mul" true (is_saturated (mul (of_int (cap / 2)) (of_int 3)));
  check_int "mul zero" 0 (to_int (mul zero (of_int cap)));
  check "clamp negative" true (to_int (of_int (-5)) = 0);
  check "compare" true (compare one zero > 0)

(* --- Parallel --- *)

let parallel_matches_sequential =
  qtest "parallel map = sequential map" QCheck2.Gen.(pair seed_gen (int_range 0 200))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let input = Array.init n (fun _ -> Prng.int rng 1000) in
      let f x = (x * x) + 1 in
      Wl_util.Parallel.map_array ~domains:4 f input = Array.map f input)

let test_parallel_ops () =
  let input = Array.init 100 Fun.id in
  check "init" true
    (Wl_util.Parallel.init ~domains:3 100 Fun.id = input);
  check "for_all true" true
    (Wl_util.Parallel.for_all ~domains:3 (fun x -> x < 100) input);
  check "for_all false" false
    (Wl_util.Parallel.for_all ~domains:3 (fun x -> x < 99) input);
  check_int "count" 50 (Wl_util.Parallel.count ~domains:3 (fun x -> x mod 2 = 0) input);
  check "empty" true (Wl_util.Parallel.map_array ~domains:4 succ [||] = [||]);
  check "singleton" true (Wl_util.Parallel.map_array ~domains:4 succ [| 1 |] = [| 2 |]);
  check "degenerate domains" true
    (Wl_util.Parallel.map_array ~domains:0 succ [| 1; 2 |] = [| 2; 3 |])

(* --- Vec --- *)

let test_vec () =
  let v = Vec.create () in
  check "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  check_int "length" 100 (Vec.length v);
  check_int "get" 42 (Vec.get v 42);
  Vec.set v 42 1000;
  check_int "set" 1000 (Vec.get v 42);
  check_int "last" 99 (Vec.last v);
  check_int "pop" 99 (Vec.pop v);
  check_int "length after pop" 99 (Vec.length v);
  check "exists" true (Vec.exists (fun x -> x = 1000) v);
  check_int "fold" (Vec.fold (fun a x -> a + x) 0 v)
    (List.fold_left ( + ) 0 (Vec.to_list v));
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 99));
  Vec.clear v;
  check "cleared" true (Vec.is_empty v)

let suite =
  [
    ( "util",
      [
        Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "prng seeds differ" `Quick test_prng_differs_by_seed;
        prng_bounds;
        prng_int_in;
        prng_shuffle_permutes;
        prng_sample;
        Alcotest.test_case "prng float range" `Quick test_prng_float_range;
        Alcotest.test_case "prng split" `Quick test_prng_split_independent;
        Alcotest.test_case "union-find basic" `Quick test_union_find_basic;
        Alcotest.test_case "union-find class sizes" `Quick test_union_find_class_sizes;
        union_find_vs_reference;
        bitset_vs_reference;
        Alcotest.test_case "bitset fill/clear" `Quick test_bitset_fill_clear;
        Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
        Alcotest.test_case "bitset iteration order" `Quick test_bitset_iter_order;
        Alcotest.test_case "permutation validation" `Quick test_permutation_validation;
        permutation_inverse;
        permutation_cycles_cover;
        Alcotest.test_case "cycle type" `Quick test_cycle_type;
        Alcotest.test_case "of_two_bijections" `Quick test_of_two_bijections;
        Alcotest.test_case "saturating arithmetic" `Quick test_saturating;
        parallel_matches_sequential;
        Alcotest.test_case "parallel operations" `Quick test_parallel_ops;
        Alcotest.test_case "vec" `Quick test_vec;
      ] );
  ]
