lib/core/conversion.mli: Digraph Instance Solver Wl_digraph
