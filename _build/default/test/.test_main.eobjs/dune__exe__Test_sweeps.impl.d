test/test_sweeps.ml: Alcotest Helpers List Wl_validate
