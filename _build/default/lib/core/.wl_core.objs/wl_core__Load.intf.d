lib/core/load.mli: Digraph Instance Wl_digraph
