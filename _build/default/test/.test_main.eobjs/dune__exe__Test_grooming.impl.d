test/test_grooming.ml: Alcotest Array Assignment Digraph Dipath Grooming Helpers Instance List Load QCheck2 Wl_core Wl_dag Wl_digraph Wl_netgen Wl_util
