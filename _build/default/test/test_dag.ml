(* Tests for the validated DAG wrapper. *)

open Helpers
open Wl_digraph
module Dag = Wl_dag.Dag
module Prng = Wl_util.Prng
module Saturating = Wl_util.Saturating

let test_rejects_cycle () =
  let g = Digraph.of_arcs 3 [ (0, 1); (1, 2); (2, 0) ] in
  (match Dag.of_digraph g with
  | Ok _ -> Alcotest.fail "cycle accepted"
  | Error msg -> check "message mentions cycle" true (String.length msg > 0));
  Alcotest.check_raises "exn variant"
    (Invalid_argument "not a DAG: directed cycle v0 -> v1 -> v2") (fun () ->
      ignore (Dag.of_digraph_exn g))

let test_sources_sinks () =
  let g = Digraph.of_arcs 5 [ (0, 2); (1, 2); (2, 3); (2, 4) ] in
  let d = Dag.of_digraph_exn g in
  check "sources" true (Dag.sources d = [ 0; 1 ]);
  check "sinks" true (Dag.sinks d = [ 3; 4 ])

let test_longest_path () =
  let g = Digraph.of_arcs 6 [ (0, 1); (1, 2); (2, 3); (0, 4); (4, 5) ] in
  check_int "longest" 3 (Dag.longest_path_length (Dag.of_digraph_exn g));
  let empty = Digraph.of_arcs 3 [] in
  check_int "no arcs" 0 (Dag.longest_path_length (Dag.of_digraph_exn empty))

(* k diamonds in a row: 2^k dipaths end to end. *)
let test_count_paths () =
  let k = 5 in
  let g = Digraph.create () in
  Digraph.add_vertices g ((3 * k) + 1);
  for i = 0 to k - 1 do
    let base = 3 * i in
    ignore (Digraph.add_arc g base (base + 1));
    ignore (Digraph.add_arc g base (base + 2));
    ignore (Digraph.add_arc g (base + 1) (base + 3));
    ignore (Digraph.add_arc g (base + 2) (base + 3))
  done;
  let d = Dag.of_digraph_exn g in
  check_int "2^k dipaths" 32
    (Saturating.to_int (Dag.count_dipaths d 0 (3 * k)))

let topo_position_consistent =
  qtest "topo positions strictly increase along arcs" seed_gen (fun seed ->
      let g = gnp_dag seed 18 0.2 in
      let d = Dag.of_digraph_exn g in
      Digraph.fold_arcs
        (fun _ u v acc -> acc && Dag.topo_position d u < Dag.topo_position d v)
        g true)

let counting_matches_enumeration =
  qtest "count_dipaths = |all_dipaths_between| on small DAGs" seed_gen
    (fun seed ->
      let g = gnp_dag seed 9 0.3 in
      let d = Dag.of_digraph_exn g in
      let ok = ref true in
      for x = 0 to 8 do
        for y = 0 to 8 do
          if x <> y then begin
            let counted = Saturating.to_int (Dag.count_dipaths d x y) in
            let listed = List.length (Dag.all_dipaths_between ~limit:10_000 d x y) in
            if counted <> listed then ok := false
          end
        done
      done;
      !ok)

let some_dipath_valid =
  qtest "some_dipath returns a dipath iff reachable" seed_gen (fun seed ->
      let g = gnp_dag seed 12 0.25 in
      let d = Dag.of_digraph_exn g in
      let ok = ref true in
      for x = 0 to 11 do
        let reach = Wl_digraph.Traversal.reachable_from g x in
        for y = 0 to 11 do
          if x <> y then
            match Dag.some_dipath d x y with
            | Some p ->
              if Dipath.src p <> x || Dipath.dst p <> y || not reach.(y) then
                ok := false
            | None -> if reach.(y) then ok := false
        done
      done;
      !ok)

(* The Theorem 1 peeling invariant: scanning arcs_by_tail_topo, every
   in-arc of an arc's tail appears strictly earlier. *)
let peeling_invariant =
  qtest "arcs_by_tail_topo: in-arcs of the tail come earlier" seed_gen
    (fun seed ->
      let g = gnp_dag seed 15 0.3 in
      let d = Dag.of_digraph_exn g in
      let order = Dag.arcs_by_tail_topo d in
      let index = Array.make (Digraph.n_arcs g) 0 in
      Array.iteri (fun i a -> index.(a) <- i) order;
      Array.for_all
        (fun a ->
          let tail = Digraph.arc_src g a in
          List.for_all (fun b -> index.(b) < index.(a)) (Digraph.in_arcs g tail))
        order)

let suite =
  [
    ( "dag",
      [
        Alcotest.test_case "rejects directed cycles" `Quick test_rejects_cycle;
        Alcotest.test_case "sources and sinks" `Quick test_sources_sinks;
        Alcotest.test_case "longest path" `Quick test_longest_path;
        Alcotest.test_case "path counting (diamond chain)" `Quick test_count_paths;
        topo_position_consistent;
        counting_matches_enumeration;
        some_dipath_valid;
        peeling_invariant;
      ] );
  ]
