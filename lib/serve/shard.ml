open Wl_core
module Engine = Wl_engine.Engine
module Ctx = Wl_obs.Ctx
module Trace = Wl_obs.Trace
module Clock = Wl_obs.Clock
module Flight = Wl_obs.Flight
module Hdr = Wl_obs.Hdr

(* FNV-1a with the offset basis folded into OCaml's 63-bit int range. *)
let shard_of_tenant ~shards tenant =
  let h = ref 0x4bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    tenant;
  (!h land max_int) mod shards

type job = {
  req : Proto.req;
  ctx : Ctx.t;  (** propagated trace context, [Ctx.none] when untraced *)
  enq_us : float;  (** enqueue stamp, feeds the [serve.queue_wait] span *)
  job_m : Mutex.t;
  job_c : Condition.t;
  mutable reply : Proto.reply option;
}

type shard = {
  sid : int;
  m : Mutex.t;
  nonempty : Condition.t;
  nonfull : Condition.t;
  mutable queue : job list;  (** newest first *)
  mutable queue_len : int;
  mutable stopping : bool;
  sessions : (string, Engine.session) Hashtbl.t;
  roster_m : Mutex.t;
  mutable roster : (string * Engine.session) list;
      (** mirror of [sessions], maintained on Open/Evict.  The Hashtbl
          belongs to the worker domain (it is mutated outside [m]), so
          introspection requests answered on caller threads read this
          mirror under its own lock instead of racing the table. *)
  n_sessions : int Atomic.t;
  mutable worker : unit Domain.t option;
}

type t = {
  shards : shard array;
  max_queue : int;
  flight_capacity : int;
  threaded : bool;
  drain_m : Mutex.t;
  mutable drained : (string * Engine.session) list option;
}

(* --- introspection (dstats / dhealth / tracedump) --------------------------- *)

(* Served on the caller's thread, never queued behind engine work: the
   figures come from the roster mirror plus lock-free read-backs (HDR
   atomics, stats ints).  Racing a concurrent op can skew one sample —
   monitoring-grade, never corrupting. *)
let roster_snapshot t =
  Array.to_list t.shards
  |> List.concat_map (fun sh ->
         Mutex.lock sh.roster_m;
         let r = sh.roster in
         Mutex.unlock sh.roster_m;
         List.rev_map (fun (tenant, s) -> (sh.sid, tenant, s)) r)
  |> List.sort (fun (_, a, _) (_, b, _) -> String.compare a b)

let rollup_of_hdr h =
  let s = Hdr.snapshot h in
  let ex_ns, ex_trace =
    match Hdr.exemplar h with Some (v, tr) -> (v, tr) | None -> (0, 0)
  in
  {
    Proto.l_count = s.Hdr.count;
    l_p50 = s.Hdr.p50;
    l_p90 = s.Hdr.p90;
    l_p99 = s.Hdr.p99;
    l_p999 = s.Hdr.p999;
    l_max = s.Hdr.max;
    l_ex_ns = ex_ns;
    l_ex_trace = ex_trace;
  }

let dstats t : Proto.reply =
  let sessions = roster_snapshot t in
  (* Daemon-wide quantiles come from merging every session's histogram —
     not from averaging per-session quantiles, which would be wrong. *)
  let add = Hdr.create () and remove = Hdr.create () in
  let tenants =
    List.map
      (fun (sid, tenant, s) ->
        Hdr.merge_into ~dst:add (Engine.add_hdr s);
        Hdr.merge_into ~dst:remove (Engine.remove_hdr s);
        let h = Engine.health s in
        let st = Engine.stats s in
        {
          Proto.r_tenant = tenant;
          r_shard = sid;
          r_paths = Engine.n_live_paths s;
          r_pi = Engine.pi s;
          r_ops = st.Engine.ops;
          r_add_p50 = h.Engine.add_latency.Hdr.p50;
          r_add_p99 = h.Engine.add_latency.Hdr.p99;
          r_healthy = h.Engine.healthy;
        })
      sessions
  in
  Ok
    (Proto.R_dstats
       {
         Proto.d_shards = Array.length t.shards;
         d_sessions = List.length sessions;
         d_add = rollup_of_hdr add;
         d_remove = rollup_of_hdr remove;
         d_tenants = tenants;
       })

let dhealth t : Proto.reply =
  let sessions = roster_snapshot t in
  let unhealthy =
    List.filter_map
      (fun (_, tenant, s) ->
        if (Engine.health s).Engine.healthy then None else Some tenant)
      sessions
  in
  Ok
    (Proto.R_dhealth
       {
         Proto.dh_healthy = unhealthy = [];
         dh_sessions = List.length sessions;
         dh_unhealthy = unhealthy;
       })

let trace_dump t ~last : Proto.reply =
  let rings = List.map (fun (_, _, s) -> Engine.flight s) (roster_snapshot t) in
  let last = if last <= 0 then None else Some last in
  Ok (Proto.R_trace (Flight.merged_chrome ?last rings))

(* --- per-request execution (runs on the owning shard) ---------------------- *)

let no_session tenant = Error.Invalid_op ("no open session for tenant " ^ tenant)

let with_session sh tenant k =
  match Hashtbl.find_opt sh.sessions tenant with
  | None -> Error (no_session tenant)
  | Some s -> k s

let wire_outcomes (b : Engine.batch) =
  Proto.R_outcomes
    {
      outcomes = Array.map (Result.map Proto.outcome_of_engine) b.Engine.outcomes;
      after = Proto.report_of_solver b.Engine.batch_report;
    }

let handle_one t sh (req : Proto.req) : Proto.reply =
  match req with
  | Proto.Hello v ->
    if v = Proto.version then Ok (Proto.R_hello Proto.version)
    else Error (Error.Unsupported_version v)
  | Proto.Ping -> Ok Proto.R_pong
  | Proto.Shutdown -> Ok Proto.R_bye
  | Proto.Open { tenant; instance } ->
    let s = Engine.create ~flight_capacity:t.flight_capacity instance in
    Flight.set_label (Engine.flight s) tenant;
    if not (Hashtbl.mem sh.sessions tenant) then Atomic.incr sh.n_sessions;
    Hashtbl.replace sh.sessions tenant s;
    Mutex.lock sh.roster_m;
    sh.roster <- (tenant, s) :: List.remove_assoc tenant sh.roster;
    Mutex.unlock sh.roster_m;
    Ok (Proto.R_open (Proto.report_of_solver (Engine.report s)))
  | Proto.Add_path { tenant; vertices } ->
    with_session sh tenant (fun s ->
        Result.map (fun id -> Proto.R_path id) (Engine.add_path s vertices))
  | Proto.Remove_path { tenant; id } ->
    with_session sh tenant (fun s ->
        Result.map (fun () -> Proto.R_removed id) (Engine.remove_path s id))
  | Proto.Add_arc { tenant; tail; head } ->
    with_session sh tenant (fun s ->
        Result.map (fun a -> Proto.R_arc a) (Engine.add_arc s tail head))
  | Proto.Submit { tenant; ops } ->
    with_session sh tenant (fun s -> Ok (wire_outcomes (Engine.submit s ops)))
  | Proto.Report { tenant } ->
    with_session sh tenant (fun s ->
        Ok (Proto.R_report (Proto.report_of_solver (Engine.report s))))
  | Proto.Pi { tenant } -> with_session sh tenant (fun s -> Ok (Proto.R_pi (Engine.pi s)))
  | Proto.Color_of { tenant; id } ->
    with_session sh tenant (fun s ->
        Result.map (fun c -> Proto.R_color c) (Engine.color_of s id))
  | Proto.Stats { tenant } ->
    with_session sh tenant (fun s -> Ok (Proto.R_stats (Engine.stats s)))
  | Proto.Health { tenant } ->
    with_session sh tenant (fun s ->
        Ok (Proto.R_health (Proto.health_of_engine (Engine.health s))))
  | Proto.Snapshot { tenant } ->
    with_session sh tenant (fun s -> Ok (Proto.R_snapshot (Engine.instance s)))
  | Proto.Evict { tenant } ->
    with_session sh tenant (fun s ->
        ignore s;
        Hashtbl.remove sh.sessions tenant;
        Mutex.lock sh.roster_m;
        sh.roster <- List.remove_assoc tenant sh.roster;
        Mutex.unlock sh.roster_m;
        Atomic.decr sh.n_sessions;
        Ok Proto.R_evicted)
  | Proto.Dstats -> dstats t
  | Proto.Dhealth -> dhealth t
  | Proto.Trace_dump { last } -> trace_dump t ~last

(* --- trace-context plumbing ------------------------------------------------ *)

(* Install the propagated context as the domain-ambient one while the
   engine works, so op spans, HDR exemplars and flight records latch the
   caller's trace id; [serve.batch]/[serve.engine] spans carry it too and
   line up under the client span in a merged Chrome view. *)
let with_ctx ctx f =
  if Ctx.is_none ctx then f ()
  else begin
    (* Save/restore rather than clear: on the synchronous loopback the
       client's own ambient context lives on this same domain. *)
    let prev = Ctx.current () in
    Ctx.set ctx;
    Fun.protect ~finally:(fun () -> Ctx.set prev) f
  end

let handle_traced t sh ~ctx req =
  with_ctx ctx (fun () ->
      if Ctx.is_none ctx || not (Trace.enabled ()) then handle_one t sh req
      else
        Trace.with_span "serve.batch"
          ~args:[ ("shard", Trace.Int sh.sid); ("jobs", Trace.Int 1) ]
          (fun () ->
            Trace.with_span "serve.engine"
              ~args:[ ("verb", Trace.Str (Proto.verb_of_req req)) ]
              (fun () -> handle_one t sh req)))

(* --- wave batching --------------------------------------------------------- *)

(* A tenant's slice of one submit_many wave: jobs in order, each owed
   [nops] outcomes; at most one trailing Submit job (it consumes the
   batch report, so nothing of that tenant's may run after it). *)
type run = { tenant : string; session : Engine.session; mutable jobs : (job * int) list }

let job_ops (req : Proto.req) =
  match req with
  | Proto.Add_path { vertices; _ } -> Some [ Engine.Add_path vertices ]
  | Proto.Remove_path { id; _ } -> Some [ Engine.Remove_path id ]
  | Proto.Add_arc { tail; head; _ } -> Some [ Engine.Add_arc (tail, head) ]
  | Proto.Submit { ops; _ } -> Some ops
  | _ -> None

let req_tenant (req : Proto.req) =
  match req with
  | Proto.Add_path { tenant; _ }
  | Proto.Remove_path { tenant; _ }
  | Proto.Add_arc { tenant; _ }
  | Proto.Submit { tenant; _ } -> Some tenant
  | _ -> None

let is_submit = function Proto.Submit _ -> true | _ -> false

let finish job reply =
  Mutex.lock job.job_m;
  job.reply <- Some reply;
  Condition.signal job.job_c;
  Mutex.unlock job.job_m

let single_reply (req : Proto.req) (o : (Engine.op_outcome, Error.t) result) : Proto.reply =
  match (req, o) with
  | Proto.Add_path _, Ok (Engine.Path_added id) -> Ok (Proto.R_path id)
  | Proto.Remove_path { id; _ }, Ok (Engine.Path_removed _) -> Ok (Proto.R_removed id)
  | Proto.Add_arc _, Ok (Engine.Arc_added a) -> Ok (Proto.R_arc a)
  | _, Error e -> Error e
  | _, Ok _ -> Error (Error.Invalid_op "batch outcome shape mismatch")

let distribute run (b : Engine.batch) =
  let off = ref 0 in
  List.iter
    (fun (job, nops) ->
      let slice = Array.sub b.Engine.outcomes !off nops in
      off := !off + nops;
      match job.req with
      | Proto.Submit _ ->
        finish job
          (Ok
             (Proto.R_outcomes
                {
                  outcomes = Array.map (Result.map Proto.outcome_of_engine) slice;
                  after = Proto.report_of_solver b.Engine.batch_report;
                }))
      | req -> finish job (single_reply req slice.(0)))
    run.jobs

(* Collect the longest prefix of [wave] in which every tenant contributes
   one submit_many entry; returns the runs (wave order) and the rest. *)
let collect_runs sh wave =
  let runs = ref [] in
  let find tenant = List.find_opt (fun r -> r.tenant = tenant) !runs in
  let closed r =
    match r.jobs with (j, _) :: _ -> is_submit j.req | [] -> false
  in
  let rec go = function
    | [] -> []
    | job :: rest as jobs -> (
      match (job_ops job.req, req_tenant job.req) with
      | Some ops, Some tenant -> (
        match Hashtbl.find_opt sh.sessions tenant with
        | None ->
          finish job (Error (no_session tenant));
          go rest
        | Some session -> (
          match find tenant with
          | Some r when closed r -> jobs (* report barrier: next wave *)
          | Some r ->
            r.jobs <- (job, List.length ops) :: r.jobs;
            go rest
          | None ->
            runs := { tenant; session; jobs = [ (job, List.length ops) ] } :: !runs;
            go rest))
      | _ -> jobs (* query or admin: barrier *))
  in
  let rest = go wave in
  (List.rev_map (fun r -> r.jobs <- List.rev r.jobs; r) !runs, rest)

let mutation_prefix wave =
  match wave with
  | job :: _ -> job_ops job.req <> None && req_tenant job.req <> None
  | [] -> false

(* The first traced context in a run labels the whole engine batch: a
   wave mixes jobs from many clients, and one submit serves them all. *)
let run_ctx run =
  List.fold_left (fun acc (j, _) -> if Ctx.is_none acc then j.ctx else acc) Ctx.none run.jobs

let rec process t sh wave =
  match wave with
  | [] -> ()
  | job :: rest when not (mutation_prefix wave) ->
    finish job (handle_traced t sh ~ctx:job.ctx job.req);
    process t sh rest
  | _ ->
    let runs, rest = collect_runs sh wave in
    (match runs with
    | [] -> ()
    | [ run ] ->
      (* one tenant: plain submit, no domain fan-out *)
      let ops = List.concat_map (fun (j, _) -> Option.get (job_ops j.req)) run.jobs in
      let ctx = run_ctx run in
      let b =
        with_ctx ctx (fun () ->
            if Ctx.is_none ctx || not (Trace.enabled ()) then Engine.submit run.session ops
            else
              Trace.with_span "serve.batch"
                ~args:
                  [
                    ("shard", Trace.Int sh.sid);
                    ("tenant", Trace.Str run.tenant);
                    ("jobs", Trace.Int (List.length run.jobs));
                  ]
                (fun () ->
                  Trace.with_span "serve.engine"
                    ~args:[ ("ops", Trace.Int (List.length ops)) ]
                    (fun () -> Engine.submit run.session ops)))
      in
      distribute run b
    | runs ->
      let entries =
        Array.of_list
          (List.map
             (fun r ->
               (r.session, List.concat_map (fun (j, _) -> Option.get (job_ops j.req)) r.jobs))
             runs)
      in
      (* submit_many fans runs out over domains; ambient context is
         per-domain, so engine-side latching only follows the single-run
         path — here the batch span alone carries the trace. *)
      let ctx =
        List.fold_left (fun acc r -> if Ctx.is_none acc then run_ctx r else acc) Ctx.none runs
      in
      let batches =
        with_ctx ctx (fun () ->
            if Ctx.is_none ctx || not (Trace.enabled ()) then Engine.submit_many entries
            else
              Trace.with_span "serve.batch"
                ~args:[ ("shard", Trace.Int sh.sid); ("runs", Trace.Int (List.length runs)) ]
                (fun () -> Engine.submit_many entries))
      in
      List.iteri (fun i r -> distribute r batches.(i)) runs);
    process t sh rest

(* --- worker loop ----------------------------------------------------------- *)

let worker_loop t sh =
  let rec loop () =
    Mutex.lock sh.m;
    while sh.queue = [] && not sh.stopping do
      Condition.wait sh.nonempty sh.m
    done;
    let wave = List.rev sh.queue in
    sh.queue <- [];
    sh.queue_len <- 0;
    Condition.broadcast sh.nonfull;
    Mutex.unlock sh.m;
    (if Trace.enabled () then
       let t1_us = Clock.now_us () in
       List.iter
         (fun job ->
           if not (Ctx.is_none job.ctx) then
             with_ctx job.ctx (fun () ->
                 Trace.span_between "serve.queue_wait" ~t0_us:job.enq_us ~t1_us))
         wave);
    match wave with
    | [] -> () (* stopping and flushed *)
    | wave ->
      process t sh wave;
      loop ()
  in
  loop ()

(* --- public surface -------------------------------------------------------- *)

let create ?(threaded = true) ?(flight_capacity = 256) ~shards ~max_queue () =
  if shards <= 0 then invalid_arg "Shard.create: shards must be positive";
  if max_queue <= 0 then invalid_arg "Shard.create: max_queue must be positive";
  let mk sid =
    {
      sid;
      m = Mutex.create ();
      nonempty = Condition.create ();
      nonfull = Condition.create ();
      queue = [];
      queue_len = 0;
      stopping = false;
      sessions = Hashtbl.create 64;
      roster_m = Mutex.create ();
      roster = [];
      n_sessions = Atomic.make 0;
      worker = None;
    }
  in
  let t =
    {
      shards = Array.init shards mk;
      max_queue;
      flight_capacity;
      threaded;
      drain_m = Mutex.create ();
      drained = None;
    }
  in
  if threaded then
    Array.iter (fun sh -> sh.worker <- Some (Domain.spawn (fun () -> worker_loop t sh))) t.shards;
  t

let shards t = Array.length t.shards

let session_count t =
  Array.fold_left (fun acc sh -> acc + Atomic.get sh.n_sessions) 0 t.shards

let draining_error = Error.Precondition "server draining"

let call_sync t sh ~ctx req =
  Mutex.lock sh.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sh.m)
    (fun () ->
      if sh.stopping then Error draining_error
      else begin
        (* Synchronous dispatch never queues — a zero-width queue-wait
           span keeps the traced span set identical across modes. *)
        (if (not (Ctx.is_none ctx)) && Trace.enabled () then
           with_ctx ctx (fun () ->
               let now = Clock.now_us () in
               Trace.span_between "serve.queue_wait" ~t0_us:now ~t1_us:now));
        handle_traced t sh ~ctx req
      end)

let call_threaded t sh ~ctx req =
  let job =
    {
      req;
      ctx;
      enq_us = Clock.now_us ();
      job_m = Mutex.create ();
      job_c = Condition.create ();
      reply = None;
    }
  in
  Mutex.lock sh.m;
  while sh.queue_len >= t.max_queue && not sh.stopping do
    Condition.wait sh.nonfull sh.m
  done;
  if sh.stopping then begin
    Mutex.unlock sh.m;
    Error draining_error
  end
  else begin
    sh.queue <- job :: sh.queue;
    sh.queue_len <- sh.queue_len + 1;
    Condition.signal sh.nonempty;
    Mutex.unlock sh.m;
    Mutex.lock job.job_m;
    while job.reply = None do
      Condition.wait job.job_c job.job_m
    done;
    Mutex.unlock job.job_m;
    Option.get job.reply
  end

let owning_tenant : Proto.req -> string option = function
  | Proto.Hello _ | Proto.Ping | Proto.Shutdown -> None
  | Proto.Open { tenant; _ }
  | Proto.Add_path { tenant; _ }
  | Proto.Remove_path { tenant; _ }
  | Proto.Add_arc { tenant; _ }
  | Proto.Submit { tenant; _ }
  | Proto.Report { tenant }
  | Proto.Pi { tenant }
  | Proto.Color_of { tenant; _ }
  | Proto.Stats { tenant }
  | Proto.Health { tenant }
  | Proto.Snapshot { tenant }
  | Proto.Evict { tenant } -> Some tenant
  | Proto.Dstats | Proto.Dhealth | Proto.Trace_dump _ -> None

let call ?(ctx = Ctx.none) t (req : Proto.req) =
  match owning_tenant req with
  | None -> (
    match req with
    | Proto.Hello v ->
      if v = Proto.version then Ok (Proto.R_hello Proto.version)
      else Error (Error.Unsupported_version v)
    | Proto.Ping -> Ok Proto.R_pong
    | Proto.Dstats -> dstats t
    | Proto.Dhealth -> dhealth t
    | Proto.Trace_dump { last } -> trace_dump t ~last
    | _ -> Ok Proto.R_bye)
  | Some tenant ->
    let sh = t.shards.(shard_of_tenant ~shards:(Array.length t.shards) tenant) in
    if t.threaded then call_threaded t sh ~ctx req else call_sync t sh ~ctx req

let drain t =
  Mutex.lock t.drain_m;
  match t.drained with
  | Some listing ->
    Mutex.unlock t.drain_m;
    listing
  | None ->
    Array.iter
      (fun sh ->
        Mutex.lock sh.m;
        sh.stopping <- true;
        Condition.broadcast sh.nonempty;
        Condition.broadcast sh.nonfull;
        Mutex.unlock sh.m)
      t.shards;
    if t.threaded then
      Array.iter
        (fun sh ->
          match sh.worker with
          | Some d ->
            Domain.join d;
            sh.worker <- None
          | None -> ())
        t.shards;
    let listing =
      Array.to_list t.shards
      |> List.concat_map (fun sh ->
             Hashtbl.fold (fun tenant s acc -> (tenant, s) :: acc) sh.sessions [])
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    t.drained <- Some listing;
    Mutex.unlock t.drain_m;
    listing
