(* stress — large-scale randomized validation sweeps, in parallel.

   Each sweep (see Wl_validate.Sweeps) re-validates one of the paper's
   theorems over thousands of generated instances; failures print the
   offending seed so they can be replayed.  Sweeps run chunk-parallel over
   OCaml 5 domains.

   Run with: dune exec bin/stress.exe -- [--seeds N] [--domains D]
               [--metrics] [--metrics-out PATH] [--replay SEED] [--shrink]
               [SWEEP..]
   Sweeps: thm1 thm2 thm6 thm6multi casec grooming all (default: all)

   Daemon load generator (wavelength-assignment-as-a-service):
     --daemon ADDR  replay an add/remove churn against a running `wl wld`
                    daemon instead of running sweeps; with
                    [--sessions N] [--client-threads T] [--ops K] [--seed S]
                    [--json] [--trace] [--record TRAJECTORY.jsonl]
                    [--metrics-out PATH]
                    publishes p50/p99 op latency and the warm-hit rate, and
                    --record appends them as the serve/churn bench arm;
                    --trace attaches a deterministic trace context to every
                    request, so the daemon's flight rings and HDR exemplars
                    latch trace ids (pull them with `wl trace pull ADDR`)

   --metrics      collect and print solver-internals counters at the end
   --metrics-out PATH
                  also collect counters and write them as an OpenMetrics
                  text exposition to PATH ("-" for stdout) — the file that
                  `wl metrics-check` validates in CI
   --replay SEED  rerun one sweep on a single seed with tracing enabled
                  and print the span tree — for diagnosing a reported
                  failure, not just reproducing it (requires exactly one
                  SWEEP argument)
   --shrink       when a sweep fails, minimize its first failure with the
                  Wl_check shrinker and print the reduced .wl instance *)

module Sweeps = Wl_validate.Sweeps
module Parallel = Wl_util.Parallel
module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace
module Client = Wl_serve.Client
module Hdr = Wl_obs.Hdr
module Prng = Wl_util.Prng

(* --- daemon load generator (--daemon ADDR) ---------------------------------

   Replays a Traffic-style add/remove churn against a running wld daemon:
   [sessions] tenants multiplexed over [threads] client connections, each
   tenant an independent engine session server-side.  Publishes p50/p99 op
   latency and the warm-hit rate, and with --record appends them as a
   serve/* arm to the bench trajectory (the PR 5 dashboard picks the arm
   up from there). *)

let daemon_fail fmt = Printf.ksprintf (fun m -> prerr_endline ("stress: " ^ m); exit 74) fmt

let or_daemon_fail ~ctx = function
  | Ok v -> v
  | Error e -> daemon_fail "%s: %s" ctx (Wl_core.Error.to_string e)

type daemon_result = {
  wall_s : float;
  total_ops : int;
  p50_ns : int;
  p99_ns : int;
  warm_hit_rate : float;
  latencies_ns : float list;
}

let run_daemon ~addr ~sessions ~threads ~ops ~seed ~json =
  let rng = Prng.create seed in
  (* a rooted tree has no internal cycle, so the engine's warm paths stay
     live — the steady state whose p50/p99 the arm is meant to track *)
  let dag = Wl_netgen.Generators.random_rooted_tree rng 48 in
  let reqs = Wl_netgen.Traffic.uniform rng dag 64 in
  let pool =
    match Wl_core.Routing.route_shortest dag reqs with
    | Ok [] | Error _ -> daemon_fail "could not route a churn pool"
    | Ok paths -> Array.of_list (List.map Wl_digraph.Dipath.vertices paths)
  in
  let base = Wl_core.Instance.make dag [] in
  let tenant k = Printf.sprintf "t%05d" k in
  let hdrs = Array.init threads (fun _ -> Hdr.create ()) in
  let lats = Array.make threads [] in
  let warm = Array.make threads 0 and accepted = Array.make threads 0 in
  let errors = Array.make threads 0 in
  let worker i () =
    let client =
      or_daemon_fail ~ctx:addr (Client.connect ~json ~seed:(seed + (7919 * (i + 1))) addr)
    in
    let rng = Prng.create (seed + 7919 * (i + 1)) in
    let mine = ref [] in
    let k = ref i in
    while !k < sessions do
      let s =
        or_daemon_fail ~ctx:(tenant !k) (Client.open_session client ~tenant:(tenant !k) base)
      in
      mine := (s, ref []) :: !mine;
      k := !k + threads
    done;
    let mine = Array.of_list !mine in
    let timed f =
      let t0 = Wl_obs.Clock.now_ns () in
      let r = f () in
      let dt = Wl_obs.Clock.now_ns () - t0 in
      Hdr.record hdrs.(i) dt;
      lats.(i) <- float_of_int dt :: lats.(i);
      r
    in
    (* round-robin over this thread's tenants so the whole population stays
       concurrently live on the daemon *)
    for _round = 1 to ops do
      Array.iter
        (fun (s, live) ->
          let n_live = List.length !live in
          if n_live = 0 || Prng.bernoulli rng 0.6 then (
            let vs = pool.(Prng.int rng (Array.length pool)) in
            match timed (fun () -> Client.add_path s vs) with
            | Ok pid -> live := pid :: !live
            | Error _ -> errors.(i) <- errors.(i) + 1)
          else
            let pid = List.nth !live (Prng.int rng n_live) in
            match timed (fun () -> Client.remove_path s pid) with
            | Ok () -> live := List.filter (fun x -> x <> pid) !live
            | Error _ -> errors.(i) <- errors.(i) + 1)
        mine
    done;
    Array.iter
      (fun (s, _) ->
        match Client.stats s with
        | Ok st ->
          (* warm-handled fraction, as Engine.hit_rate counts it *)
          warm.(i) <-
            warm.(i) + st.Wl_engine.Engine.warm_hits + st.Wl_engine.Engine.fresh_colors
            + st.Wl_engine.Engine.repairs + st.Wl_engine.Engine.warm_removes;
          accepted.(i) <- accepted.(i) + st.Wl_engine.Engine.ops
        | Error _ -> errors.(i) <- errors.(i) + 1)
      mine;
    Client.close client
  in
  let t0 = Unix.gettimeofday () in
  let ths = Array.init threads (fun i -> Thread.create (worker i) ()) in
  Array.iter Thread.join ths;
  let wall_s = Unix.gettimeofday () -. t0 in
  let merged = Hdr.create () in
  Array.iter (fun h -> Hdr.merge_into ~dst:merged h) hdrs;
  let total_ops = Hdr.count merged in
  let total_errors = Array.fold_left ( + ) 0 errors in
  if total_errors > 0 then daemon_fail "%d client operations failed" total_errors;
  let warm_total = Array.fold_left ( + ) 0 warm in
  let accepted_total = Array.fold_left ( + ) 0 accepted in
  {
    wall_s;
    total_ops;
    p50_ns = Hdr.quantile merged 0.5;
    p99_ns = Hdr.quantile merged 0.99;
    warm_hit_rate =
      (if accepted_total = 0 then 1.0
       else float_of_int warm_total /. float_of_int accepted_total);
    latencies_ns = Array.fold_left (fun acc l -> List.rev_append l acc) [] lats;
  }

let record_daemon_arm ~path ~sessions ~threads ~ops r =
  let module Store = Wl_obs.Store in
  let point =
    {
      Store.name = "serve/churn";
      params =
        [ ("sessions", sessions); ("client_threads", threads); ("ops_per_session", ops) ];
      extras =
        [
          ("p50_ns", float_of_int r.p50_ns);
          ("p99_ns", float_of_int r.p99_ns);
          ("warm_hit_rate", r.warm_hit_rate);
          ("ops_per_s", float_of_int r.total_ops /. r.wall_s);
        ];
      sample = Store.summarize r.latencies_ns;
      baseline_ns = None;
      counters = [];
    }
  in
  Store.append path (Store.make ~note:"serve churn" ~domains:threads [ point ]);
  Printf.printf "stress: recorded serve/churn arm to %s\n%!" path

let daemon_mode ~addr ~sessions ~threads ~ops ~seed ~json ~trace ~record ~metrics_out =
  Printf.printf
    "stress: daemon churn against %s: %d sessions, %d client threads, %d ops/session%s\n%!"
    addr sessions threads ops
    (if trace then " (traced)" else "");
  if metrics_out <> None then Metrics.set_enabled true;
  (* The discard sink enables tracing without accumulating events: the
     point is the context each request now carries on the wire (latched
     server-side into flight rings and exemplars), not client-side spans. *)
  if trace then Trace.set_sink Trace.discard;
  let r = run_daemon ~addr ~sessions ~threads ~ops ~seed ~json in
  if trace then Trace.clear ();
  Printf.printf
    "daemon     %6d sessions %8.2fs %8.0f op/s   p50 %s  p99 %s  warm %.0f%%\n%!"
    sessions r.wall_s
    (float_of_int r.total_ops /. r.wall_s)
    (Printf.sprintf "%dns" r.p50_ns)
    (Printf.sprintf "%dns" r.p99_ns)
    (100. *. r.warm_hit_rate);
  Option.iter (fun path -> record_daemon_arm ~path ~sessions ~threads ~ops r) record;
  (match metrics_out with
  | None -> ()
  | Some path ->
    Metrics.set_enabled false;
    Cli_common.write_metrics ~progname:"stress"
      ~gauges:
        [
          ("stress.daemon.sessions", float_of_int sessions);
          ("stress.daemon.ops", float_of_int r.total_ops);
          ("stress.daemon.warm_hit_rate", r.warm_hit_rate);
        ]
      path);
  exit 0

(* Minimize the first failing seed of a sweep and print the reduced
   instance.  The sweep's property can stop applying as the shrinker
   strips structure (guards return None off-class); in that case the
   original seed is still the reproducer, just not a minimal one. *)
let shrink_failure name seed =
  match Sweeps.find_sweep name with
  | None -> ()
  | Some sweep -> (
    let oracle = Wl_check.Oracle.of_sweep sweep in
    let subject = oracle.Wl_check.Oracle.generate seed in
    match
      Wl_check.Shrink.minimize ~check:oracle.Wl_check.Oracle.check subject
    with
    | exception Invalid_argument _ ->
      Printf.printf "  seed %d no longer fails under the oracle; not shrunk\n"
        seed
    | shrunk ->
      let s = shrunk.Wl_check.Shrink.subject in
      Printf.printf
        "  seed %d shrunk to %d vertices / %d paths in %d attempts (%s)\n"
        seed
        (Wl_check.Subject.n_vertices s)
        (Wl_check.Subject.n_paths s)
        shrunk.Wl_check.Shrink.attempts shrunk.Wl_check.Shrink.reason;
      print_string (Wl_check.Subject.wl_string s))

let run_sweep ~seeds ~domains ~shrink name case =
  let t0 = Unix.gettimeofday () in
  let failures = Sweeps.run ~domains ~seeds case in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%-10s %6d instances %8.2fs %8.0f/s   %s\n%!" name seeds dt
    (float_of_int seeds /. dt)
    (match failures with
    | [] -> "all ok"
    | (seed, reason) :: _ ->
      Printf.sprintf "%d FAILURES (first: seed %d, %s)" (List.length failures)
        seed reason);
  (match failures with
  | (seed, _) :: _ when shrink -> shrink_failure name seed
  | _ -> ());
  failures = []

(* Rerun a single seed of a single sweep with full observability: the
   span tree shows where the time went and which phases ran; the counter
   table shows the solver internals.  Exit status mirrors the case. *)
let replay ~seed name case =
  Printf.printf "replaying sweep %s, seed %d\n%!" name seed;
  let sink = Trace.memory () in
  Trace.set_sink sink;
  Metrics.set_enabled true;
  let result = try case seed with e -> Some (Printexc.to_string e) in
  Trace.clear ();
  Metrics.set_enabled false;
  let events = Trace.events sink in
  Format.printf "@[<v>span tree:@,%a@,@,span summary:@,%a@,@,counters:@,%a@]@."
    Trace.pp_tree events Trace.pp_summary events Metrics.pp_summary ();
  (match result with
  | None -> Printf.printf "seed %d: ok\n" seed
  | Some reason -> Printf.printf "seed %d: FAILURE (%s)\n" seed reason);
  result = None

let () =
  let seeds = ref 2000 and domains = ref (Parallel.default_domains ()) in
  let metrics = ref false and replay_seed = ref None in
  let metrics_out = ref None in
  let shrink = ref false in
  let chosen = ref [] in
  let daemon = ref None in
  let sessions = ref 1000 and client_threads = ref 8 and ops = ref 32 in
  let seed = ref 1 and json = ref false and record = ref None in
  let trace = ref false in
  let rec parse = function
    | [] -> ()
    | "--seeds" :: v :: rest ->
      seeds := int_of_string v;
      parse rest
    | "--domains" :: v :: rest ->
      domains := int_of_string v;
      parse rest
    | "--metrics" :: rest ->
      metrics := true;
      parse rest
    | "--metrics-out" :: v :: rest ->
      metrics_out := Some v;
      parse rest
    | "--replay" :: v :: rest ->
      replay_seed := Some (int_of_string v);
      parse rest
    | "--shrink" :: rest ->
      shrink := true;
      parse rest
    | "--daemon" :: v :: rest ->
      daemon := Some v;
      parse rest
    | "--sessions" :: v :: rest ->
      sessions := int_of_string v;
      parse rest
    | "--client-threads" :: v :: rest ->
      client_threads := int_of_string v;
      parse rest
    | "--ops" :: v :: rest ->
      ops := int_of_string v;
      parse rest
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--trace" :: rest ->
      trace := true;
      parse rest
    | "--record" :: v :: rest ->
      record := Some v;
      parse rest
    | "all" :: rest -> parse rest
    | name :: rest ->
      (match List.assoc_opt name Sweeps.all with
      | Some case -> chosen := (name, case) :: !chosen
      | None ->
        prerr_endline ("stress: unknown sweep " ^ name);
        exit 2);
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  (match !daemon with
  | Some addr ->
    daemon_mode ~addr ~sessions:!sessions ~threads:!client_threads ~ops:!ops
      ~seed:!seed ~json:!json ~trace:!trace ~record:!record
      ~metrics_out:!metrics_out
  | None -> ());
  let to_run = if !chosen = [] then Sweeps.all else List.rev !chosen in
  match !replay_seed with
  | Some seed ->
    let name, case =
      match to_run with
      | [ one ] -> one
      | _ ->
        prerr_endline "stress: --replay needs exactly one sweep name (e.g. --replay 42 thm1)";
        exit 2
    in
    exit (if replay ~seed name case then 0 else 1)
  | None ->
    Printf.printf "stress: %d seeds per sweep, %d domains\n%!" !seeds !domains;
    if !metrics || !metrics_out <> None then Metrics.set_enabled true;
    let ok =
      List.for_all
        (fun (name, case) ->
          run_sweep ~seeds:!seeds ~domains:!domains ~shrink:!shrink name case)
        to_run
    in
    if !metrics || !metrics_out <> None then begin
      Metrics.set_enabled false;
      if !metrics then Format.printf "@.metrics:@.%a@." Metrics.pp_summary ();
      match !metrics_out with
      | None -> ()
      | Some path ->
        Cli_common.write_metrics ~progname:"stress"
          ~gauges:
            [
              ("stress.seeds_per_sweep", float_of_int !seeds);
              ("stress.domains", float_of_int !domains);
            ]
          path
    end;
    exit (if ok then 0 else 1)
