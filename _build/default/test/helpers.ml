(* Shared test utilities: deterministic generators bridging our PRNG with
   qcheck, plus small oracles used across suites. *)

open Wl_digraph
module Prng = Wl_util.Prng
module Dag = Wl_dag.Dag

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* qcheck generates only a seed; all structure is derived through our own
   PRNG so shrinking stays meaningful and reproduction is a seed. *)
let seed_gen = QCheck2.Gen.int_range 0 1_000_000

(* Raw digraph variant (guaranteed acyclic) for the graph-level suites. *)
let gnp_dag seed n p = Dag.graph (Wl_netgen.Generators.gnp_dag (Prng.create seed) n p)

let random_instance ?(n = 16) ?(p = 0.2) ?(k = 10) seed =
  let rng = Prng.create seed in
  let dag = Wl_netgen.Generators.gnp_dag rng n p in
  Wl_netgen.Path_gen.random_instance rng dag k

let random_nic_instance ?(n = 16) ?(p = 0.2) ?(k = 10) seed =
  let rng = Prng.create seed in
  let dag = Wl_netgen.Generators.gnp_no_internal_cycle rng n p in
  Wl_netgen.Path_gen.random_instance rng dag k

let random_upp_instance ?(n = 16) ?(p = 0.2) ?(k = 10) seed =
  let rng = Prng.create seed in
  let dag = Wl_netgen.Generators.gnp_upp rng n p in
  Wl_netgen.Path_gen.random_instance rng dag k

let dedup_paths paths =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun p ->
      let key = Dipath.vertices p in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    paths

let random_upp_one_cycle_instance ?(k = 12) ?(distinct = true) seed =
  let rng = Prng.create seed in
  let dag = Wl_netgen.Generators.upp_one_internal_cycle rng () in
  let paths = Wl_netgen.Path_gen.random_family rng dag k in
  let paths = if distinct then dedup_paths paths else paths in
  Wl_core.Instance.make dag paths

(* Brute-force chromatic number by exhaustive assignment, for tiny graphs. *)
let brute_chromatic g =
  let n = Wl_conflict.Ugraph.n_vertices g in
  if n = 0 then 0
  else begin
    let coloring = Array.make n (-1) in
    let rec feasible k v =
      if v = n then true
      else
        let ok = ref false in
        let c = ref 0 in
        while (not !ok) && !c < k do
          let clash =
            List.exists
              (fun w -> coloring.(w) = !c)
              (Wl_conflict.Ugraph.neighbors g v)
          in
          if not clash then begin
            coloring.(v) <- !c;
            if feasible k (v + 1) then ok := true;
            coloring.(v) <- -1
          end;
          incr c
        done;
        !ok
    in
    let rec search k = if feasible k 0 then k else search (k + 1) in
    search 1
  end

(* Brute-force maximum clique by subset enumeration, for tiny graphs. *)
let brute_clique_number g =
  let n = Wl_conflict.Ugraph.n_vertices g in
  let best = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let vs = List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init n Fun.id) in
    if List.length vs > !best && Wl_conflict.Ugraph.is_clique g vs then
      best := List.length vs
  done;
  !best

let random_ugraph seed n p =
  let rng = Prng.create seed in
  let g = Wl_conflict.Ugraph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.bernoulli rng p then Wl_conflict.Ugraph.add_edge g u v
    done
  done;
  g
