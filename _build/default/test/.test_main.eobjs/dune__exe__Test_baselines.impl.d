test/test_baselines.ml: Alcotest Assignment Baselines Helpers Instance List Load Theorem1 Wl_core Wl_dag Wl_digraph Wl_util
