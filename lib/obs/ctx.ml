(* Trace context: deterministic 62-bit id pairs plus a per-domain
   ambient cell.  Ids stay strictly positive OCaml ints so they can ride
   through int-only surfaces (flight ring cells, HDR exemplar atomics,
   wire tokens) without boxing. *)

type t = { trace_id : int; span_id : int; parent_id : int }

let none = { trace_id = 0; span_id = 0; parent_id = 0 }
let is_none c = c.trace_id = 0

(* --- id generation -------------------------------------------------------- *)

let mask62 = (1 lsl 62) - 1

(* splitmix64's finalizer with the multipliers truncated to fit a tagged
   int, masked to 62 bits.  Quality hardly matters here — ids only need
   to be distinct and reproducible — but the avalanche keeps nearby
   seeds from yielding nearby ids. *)
let mix z =
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb in
  (z lxor (z lsr 31)) land mask62

type gen = { mutable state : int }

let gamma = 0x1e3779b97f4a7c15

let generator seed = { state = mix (seed + gamma) }

let next g =
  g.state <- (g.state + gamma) land mask62;
  let id = mix g.state in
  if id = 0 then 1 else id

let root g =
  let trace_id = next g in
  let span_id = next g in
  { trace_id; span_id; parent_id = 0 }

let child g parent =
  if is_none parent then root g
  else { trace_id = parent.trace_id; span_id = next g; parent_id = parent.span_id }

(* --- ambient per-domain cell ---------------------------------------------- *)

type cell = { mutable c_trace : int; mutable c_span : int; mutable c_parent : int }

let key = Domain.DLS.new_key (fun () -> { c_trace = 0; c_span = 0; c_parent = 0 })

let set c =
  let cell = Domain.DLS.get key in
  cell.c_trace <- c.trace_id;
  cell.c_span <- c.span_id;
  cell.c_parent <- c.parent_id

let current () =
  let cell = Domain.DLS.get key in
  { trace_id = cell.c_trace; span_id = cell.c_span; parent_id = cell.c_parent }

let current_trace () = (Domain.DLS.get key).c_trace
let clear () = set none

(* --- wire form ------------------------------------------------------------- *)

let hex = Printf.sprintf "%x"

let to_string c =
  if is_none c then invalid_arg "Ctx.to_string: none";
  Printf.sprintf "%x:%x" c.trace_id c.span_id

(* Strict hex: [int_of_string "0x..."] would also accept underscores and
   signs, which must stay protocol errors on the wire. *)
let hex_ok s =
  let n = String.length s in
  n > 0 && n <= 16
  &&
  let ok = ref true in
  String.iter
    (fun ch ->
      match ch with
      | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
      | _ -> ok := false)
    s;
  !ok

let of_string s =
  match String.index_opt s ':' with
  | None -> None
  | Some i ->
    let a = String.sub s 0 i in
    let b = String.sub s (i + 1) (String.length s - i - 1) in
    if not (hex_ok a && hex_ok b) then None
    else
      let trace_id = int_of_string ("0x" ^ a) in
      let span_id = int_of_string ("0x" ^ b) in
      if trace_id = 0 || trace_id land lnot mask62 <> 0 || span_id land lnot mask62 <> 0
      then None
      else Some { trace_id; span_id; parent_id = 0 }
