lib/conflict/clique.ml: Array Fun List Ugraph Wl_util
