type t =
  | Parse of { line : int; msg : string }
  | Invalid_path of string
  | Cyclic of string
  | Bad_index of { what : string; index : int }
  | Invalid_op of string
  | Precondition of string
  | Unsupported_version of int
  | Io of string

exception Error of t

let to_string = function
  | Parse { line; msg } ->
    if line <= 0 then msg else Printf.sprintf "line %d: %s" line msg
  | Invalid_path msg -> msg
  | Cyclic msg -> msg
  | Bad_index { what; index } -> Printf.sprintf "%s: no such index %d" what index
  | Invalid_op msg -> msg
  | Precondition msg -> msg
  | Unsupported_version v -> Printf.sprintf "unsupported format version %d" v
  | Io msg -> msg

let pp ppf e = Format.pp_print_string ppf (to_string e)

(* Stable sysexits-style codes; [distinct] (tested) so scripts can dispatch
   on the exit status of the CLI alone. *)
let exit_code = function
  | Parse _ -> 65 (* EX_DATAERR *)
  | Cyclic _ -> 66
  | Invalid_path _ -> 67
  | Bad_index _ -> 68
  | Invalid_op _ -> 69
  | Precondition _ -> 70 (* EX_SOFTWARE *)
  | Unsupported_version _ -> 71
  | Io _ -> 74 (* EX_IOERR *)

(* The wire code IS the exit code: `wld` error frames, the CLI process
   status and the library constructor tags are one namespace, so the three
   can never disagree (test_errors pins the round-trip per constructor). *)
let to_code = exit_code

(* Inverse of [to_code] over rendered messages: reconstruct the constructor
   from a wire code plus its [to_string] rendering.  Structured payloads
   (Parse line numbers, Bad_index indices, version numbers) are recovered
   by parsing the stable rendering back; a message that never came from
   [to_string] still lands in the right constructor, just with the whole
   string as its payload. *)
let of_code code msg =
  let scan_suffix_int ~prefix s =
    (* "<what>: no such index %d" — split on the *last* occurrence. *)
    let plen = String.length prefix in
    let rec find i =
      if i < 0 then None
      else if i + plen <= String.length s && String.sub s i plen = prefix then
        let tail = String.sub s (i + plen) (String.length s - i - plen) in
        Option.map (fun idx -> (String.sub s 0 i, idx)) (int_of_string_opt tail)
      else find (i - 1)
    in
    find (String.length s - plen)
  in
  match code with
  | 65 ->
    let parse =
      if String.length msg > 5 && String.sub msg 0 5 = "line " then
        match String.index_opt msg ':' with
        | Some colon
          when colon + 2 <= String.length msg
               && int_of_string_opt (String.sub msg 5 (colon - 5)) <> None ->
          let line = int_of_string (String.sub msg 5 (colon - 5)) in
          let rest = String.sub msg (colon + 2) (String.length msg - colon - 2) in
          Parse { line; msg = rest }
        | _ -> Parse { line = 0; msg }
      else Parse { line = 0; msg }
    in
    Some parse
  | 66 -> Some (Cyclic msg)
  | 67 -> Some (Invalid_path msg)
  | 68 -> (
    match scan_suffix_int ~prefix:": no such index " msg with
    | Some (what, index) -> Some (Bad_index { what; index })
    | None -> Some (Bad_index { what = msg; index = -1 }))
  | 69 -> Some (Invalid_op msg)
  | 70 -> Some (Precondition msg)
  | 71 ->
    let prefix = "unsupported format version " in
    let plen = String.length prefix in
    let v =
      if String.length msg > plen && String.sub msg 0 plen = prefix then
        int_of_string_opt (String.sub msg plen (String.length msg - plen))
      else None
    in
    Some (Unsupported_version (Option.value v ~default:(-1)))
  | 74 -> Some (Io msg)
  | _ -> None

let raise_error e = raise (Error e)

let get_exn = function Ok v -> v | Error e -> raise_error e

let of_invalid_arg f x =
  match f x with v -> Ok v | exception Invalid_argument msg -> Error (Precondition msg)
