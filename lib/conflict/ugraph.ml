module Bitset = Wl_util.Bitset

type t = { n : int; adj : Bitset.t array; mutable m : int }

let create n =
  if n < 0 then invalid_arg "Ugraph.create";
  { n; adj = Array.init n (fun _ -> Bitset.create n); m = 0 }

let n_vertices t = t.n
let n_edges t = t.m

let check t v = if v < 0 || v >= t.n then invalid_arg "Ugraph: vertex out of range"

let mem_edge t u v =
  check t u;
  check t v;
  u <> v && Bitset.mem t.adj.(u) v

let add_edge t u v =
  check t u;
  check t v;
  if u = v then invalid_arg "Ugraph.add_edge: self-loop";
  if not (Bitset.mem t.adj.(u) v) then begin
    Bitset.add t.adj.(u) v;
    Bitset.add t.adj.(v) u;
    t.m <- t.m + 1
  end

let unsafe_add_edge t u v =
  Bitset.add t.adj.(u) v;
  Bitset.add t.adj.(v) u;
  t.m <- t.m + 1

let neighbors t v =
  check t v;
  Bitset.elements t.adj.(v)

let neighbor_set t v =
  check t v;
  t.adj.(v)

let degree t v =
  check t v;
  Bitset.cardinal t.adj.(v)

let max_degree t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    best := max !best (degree t v)
  done;
  !best

let iter_edges f t =
  (* Each edge once as (u, v) with u < v, in lexicographic order — walking
     the upper triangle of the adjacency bitsets directly ([iter_ge]
     skips the lower half at word granularity), no list materialized. *)
  for u = 0 to t.n - 1 do
    Bitset.iter_ge (fun v -> f u v) t.adj.(u) (u + 1)
  done

let fold_edges f t init =
  let acc = ref init in
  iter_edges (fun u v -> acc := f !acc u v) t;
  !acc

let edges t = List.rev (fold_edges (fun acc u v -> (u, v) :: acc) t [])

let complement t =
  let c = create t.n in
  for u = 0 to t.n - 1 do
    for v = u + 1 to t.n - 1 do
      if not (mem_edge t u v) then add_edge c u v
    done
  done;
  c

let of_edges n es =
  let t = create n in
  List.iter (fun (u, v) -> add_edge t u v) es;
  t

let is_clique t vs =
  let rec go = function
    | [] -> true
    | v :: rest -> List.for_all (fun w -> mem_edge t v w) rest && go rest
  in
  go vs

let is_independent t vs =
  let rec go = function
    | [] -> true
    | v :: rest -> List.for_all (fun w -> not (mem_edge t v w)) rest && go rest
  in
  go vs

let equal a b = a.n = b.n && edges a = edges b

let pp ppf t =
  Format.fprintf ppf "@[<v>ugraph: %d vertices, %d edges@," t.n t.m;
  iter_edges (fun u v -> Format.fprintf ppf "  %d -- %d@," u v) t;
  Format.fprintf ppf "@]"
