(* Tests for traversals: BFS, topological order, cycles, reachability. *)

open Helpers
open Wl_digraph
module Prng = Wl_util.Prng
module Bitset = Wl_util.Bitset

let path_graph n = Digraph.of_arcs n (List.init (n - 1) (fun i -> (i, i + 1)))

let test_bfs_dist_on_path () =
  let g = path_graph 6 in
  let d = Traversal.bfs_dist g 0 in
  check "distances" true (d = [| 0; 1; 2; 3; 4; 5 |]);
  let d2 = Traversal.bfs_dist g 3 in
  check "unreachable is -1" true (d2 = [| -1; -1; -1; 0; 1; 2 |])

let test_bfs_path () =
  let g = Digraph.of_arcs 5 [ (0, 1); (1, 4); (0, 2); (2, 3); (3, 4) ] in
  check "shortest path" true (Traversal.bfs_parent_path g 0 4 = Some [ 0; 1; 4 ]);
  check "self" true (Traversal.bfs_parent_path g 2 2 = Some [ 2 ]);
  check "unreachable" true (Traversal.bfs_parent_path g 4 0 = None)

let topo_order_valid =
  qtest "topological order respects arcs" seed_gen (fun seed ->
      let g = gnp_dag seed 20 0.2 in
      match Traversal.topological_order g with
      | None -> false
      | Some order ->
        let pos = Array.make (Digraph.n_vertices g) 0 in
        List.iteri (fun i v -> pos.(v) <- i) order;
        List.length order = Digraph.n_vertices g
        && Digraph.fold_arcs (fun _ u v acc -> acc && pos.(u) < pos.(v)) g true)

let test_cyclic_detected () =
  let g = Digraph.of_arcs 3 [ (0, 1); (1, 2); (2, 0) ] in
  check "not acyclic" false (Traversal.is_acyclic g);
  match Traversal.find_directed_cycle g with
  | None -> Alcotest.fail "expected a directed cycle"
  | Some cycle ->
    let arr = Array.of_list cycle in
    let k = Array.length arr in
    check "cycle arcs exist" true
      (List.for_all
         (fun i -> Digraph.mem_arc g arr.(i) arr.((i + 1) mod k))
         (List.init k Fun.id))

let acyclic_no_cycle =
  qtest "DAGs have no directed cycle" seed_gen (fun seed ->
      let g = gnp_dag seed 15 0.3 in
      Traversal.is_acyclic g && Traversal.find_directed_cycle g = None)

let reachability_consistent =
  qtest "reachability matrix agrees with DFS" seed_gen (fun seed ->
      let g = gnp_dag seed 14 0.2 in
      let matrix = Traversal.reachability_matrix g in
      List.for_all
        (fun v ->
          let seen = Traversal.reachable_from g v in
          let ok = ref true in
          Array.iteri
            (fun w r -> if Bitset.mem matrix.(v) w <> r then ok := false)
            seen;
          !ok)
        (Digraph.vertices g))

let reaching_is_reverse_reachable =
  qtest "reaching_to = reachable_from in reverse graph" seed_gen (fun seed ->
      let g = gnp_dag seed 14 0.2 in
      let r = Digraph.reverse g in
      List.for_all
        (fun v -> Traversal.reaching_to g v = Traversal.reachable_from r v)
        (Digraph.vertices g))

let test_components () =
  let g = Digraph.of_arcs 6 [ (0, 1); (1, 2); (3, 4) ] in
  let comp, n = Traversal.undirected_components g in
  check_int "three components" 3 n;
  check "0,1,2 together" true (comp.(0) = comp.(1) && comp.(1) = comp.(2));
  check "3,4 together" true (comp.(3) = comp.(4));
  check "5 alone" true (comp.(5) <> comp.(0) && comp.(5) <> comp.(3))

let test_undirected_cycle_on_forest () =
  let g = Digraph.of_arcs 5 [ (0, 1); (0, 2); (2, 3); (4, 3) ] in
  check "forest has no cycle" true (Traversal.undirected_cycle g = None)

(* The walk returned must chain correctly and close up. *)
let walk_is_closed g walk =
  match walk with
  | [] -> false
  | (a0, f0) :: _ ->
    let start = if f0 then Digraph.arc_src g a0 else Digraph.arc_dst g a0 in
    let rec follow v = function
      | [] -> v = start
      | (a, fwd) :: rest ->
        let u, w = Digraph.arc_endpoints g a in
        if fwd then u = v && follow w rest else w = v && follow u rest
    in
    follow start walk

let undirected_cycle_valid =
  qtest "undirected cycle is a closed walk of distinct arcs" seed_gen (fun seed ->
      let g = gnp_dag seed 12 0.3 in
      match Traversal.undirected_cycle g with
      | None ->
        (* Then the graph must be a forest: m <= n - components. *)
        let _, comps = Traversal.undirected_components g in
        Digraph.n_arcs g = Digraph.n_vertices g - comps
      | Some walk ->
        let arcs = List.map fst walk in
        walk_is_closed g walk && List.sort_uniq compare arcs = List.sort compare arcs)

let undirected_cycle_respects_filter =
  qtest "undirected cycle honors keep_arc" seed_gen (fun seed ->
      let g = gnp_dag seed 12 0.35 in
      let keep a = a mod 2 = 0 in
      match Traversal.undirected_cycle ~keep_arc:keep g with
      | None -> true
      | Some walk -> List.for_all (fun (a, _) -> keep a) walk)

let test_dfs_postorder () =
  let g = Digraph.of_arcs 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let post = Traversal.dfs_postorder g in
  check_int "covers all vertices" (Digraph.n_vertices g) (List.length post)

let suite =
  [
    ( "traversal",
      [
        Alcotest.test_case "bfs dist on path" `Quick test_bfs_dist_on_path;
        Alcotest.test_case "bfs parent path" `Quick test_bfs_path;
        topo_order_valid;
        Alcotest.test_case "directed cycle detection" `Quick test_cyclic_detected;
        acyclic_no_cycle;
        reachability_consistent;
        reaching_is_reverse_reachable;
        Alcotest.test_case "undirected components" `Quick test_components;
        Alcotest.test_case "forest has no undirected cycle" `Quick
          test_undirected_cycle_on_forest;
        undirected_cycle_valid;
        undirected_cycle_respects_filter;
        Alcotest.test_case "dfs postorder" `Quick test_dfs_postorder;
      ] );
  ]
