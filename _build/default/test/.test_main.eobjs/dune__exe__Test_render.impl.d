test/test_render.ml: Alcotest Array Filename Fun Helpers Instance List Solver String Sys Wl_core Wl_digraph Wl_netgen
