lib/core/routing.mli: Digraph Dipath Instance Wl_dag Wl_digraph Wl_util
