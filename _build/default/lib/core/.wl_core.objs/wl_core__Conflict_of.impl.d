lib/core/conflict_of.ml: Digraph Dipath Instance List Load Wl_conflict Wl_digraph
