module Bitset = Wl_util.Bitset

(* Tomita-style branch and bound: expand(R, P) where P is the candidate set;
   prune when |R| + |P| <= |best|. Greedy coloring bound would be tighter but
   cardinality pruning suffices for conflict-graph sizes in this repo. *)
let max_clique g =
  let n = Ugraph.n_vertices g in
  if n = 0 then []
  else begin
    let best = ref [] in
    let best_size = ref 0 in
    let rec expand r r_size p =
      if r_size + Bitset.cardinal p <= !best_size then ()
      else
        match Bitset.first p with
        | None ->
          if r_size > !best_size then begin
            best := r;
            best_size := r_size
          end
        | Some _ ->
          (* Iterate candidates in decreasing-degree order for better cuts. *)
          let cands = Bitset.elements p in
          let cands =
            List.sort
              (fun u v -> compare (Ugraph.degree g v) (Ugraph.degree g u))
              cands
          in
          let p = Bitset.copy p in
          List.iter
            (fun v ->
              if Bitset.mem p v && r_size + Bitset.cardinal p > !best_size then begin
                let p' = Bitset.inter p (Ugraph.neighbor_set g v) in
                expand (v :: r) (r_size + 1) p';
                Bitset.remove p v
              end)
            cands
    in
    let all = Bitset.create n in
    Bitset.fill all;
    expand [] 0 all;
    List.sort compare !best
  end

let clique_number g = List.length (max_clique g)

let max_independent_set g = max_clique (Ugraph.complement g)

let independence_number g = List.length (max_independent_set g)

let greedy_clique g =
  let n = Ugraph.n_vertices g in
  let order = Array.init n Fun.id in
  Array.sort (fun u v -> compare (Ugraph.degree g v) (Ugraph.degree g u)) order;
  let clique = ref [] in
  Array.iter
    (fun v -> if List.for_all (fun u -> Ugraph.mem_edge g u v) !clique then clique := v :: !clique)
    order;
  List.sort compare !clique
