(** From requests to dipaths (the "R" of RWA).

    The paper studies wavelength assignment for a {e given} routing; this
    module supplies the routings used by examples and benches: the forced
    routing on UPP-DAGs, shortest paths, a load-aware heuristic, and the
    classic request families (all-to-all, multicast, random). *)

open Wl_digraph

type request = Digraph.vertex * Digraph.vertex

val route_unique : Wl_dag.Dag.t -> request list -> (Dipath.t list, string) result
(** Routes every request along the unique dipath (UPP-DAGs; on non-UPP DAGs
    an arbitrary dipath is taken).  Fails on an unroutable request. *)

val route_shortest : Wl_dag.Dag.t -> request list -> (Dipath.t list, string) result
(** BFS shortest dipaths. *)

val route_min_load : Wl_dag.Dag.t -> request list -> (Dipath.t list, string) result
(** Greedy load-aware routing: requests are routed one by one along a path
    minimizing (in lexicographic order) the maximum arc load after routing,
    then hop count — a standard heuristic for the paper's "minimize the
    load" routing phase. *)

val min_load_router :
  Wl_dag.Dag.t -> (request -> (Dipath.t, string) result)
(** A stateful online router: each call routes one request on a path
    minimizing (bottleneck load after routing, hop count) given {e all
    previously routed requests}, and charges the chosen path's arcs.
    [route_min_load] is this router folded over a request list. *)

val all_to_all : Wl_dag.Dag.t -> request list
(** Every ordered pair admitting a dipath. *)

val multicast : Wl_dag.Dag.t -> Digraph.vertex -> request list
(** From one source to every vertex reachable from it. *)

val route_multicast_tree :
  Wl_dag.Dag.t -> Digraph.vertex -> Dipath.t list
(** Routes the full multicast from a source along a BFS tree: all routes
    then live on a rooted tree, which has no internal cycle, so Theorem 1
    colors them with exactly the load — realizing (by routing choice) the
    multicast equality [w = pi] the paper cites from
    Beauquier–Hell–Pérennes.  Returns one dipath per reachable vertex
    (empty when nothing is reachable). *)

val random_requests :
  Wl_util.Prng.t -> Wl_dag.Dag.t -> int -> request list
(** [random_requests rng d k] draws [k] uniformly random routable ordered
    pairs (with repetition).  Returns fewer when the DAG has no routable
    pair at all. *)

val instance_of :
  Wl_dag.Dag.t ->
  (Wl_dag.Dag.t -> request list -> (Dipath.t list, string) result) ->
  request list ->
  (Instance.t, string) result
(** Routes and wraps into an instance. *)
