lib/digraph/traversal.mli: Digraph Wl_util
