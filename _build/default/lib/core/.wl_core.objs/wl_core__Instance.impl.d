lib/core/instance.ml: Array Digraph Dipath Format List Result Wl_dag Wl_digraph
