lib/digraph/dipath.ml: Array Digraph Format Hashtbl Int List Printf
