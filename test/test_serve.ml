(* Tests for the wlrpc/1 service stack: wire framing totality, protocol
   codecs (text and JSON, error frames included), address parsing, the
   loopback client against a live engine, and a real unix-socket daemon
   round trip ending in a graceful drain.  The statistical/differential
   side lives in the client_vs_engine and wlrpc_frame fuzz oracles; these
   are the deterministic anchors. *)

open Helpers
open Wl_core
module Engine = Wl_engine.Engine
module Wire = Wl_serve.Wire
module Proto = Wl_serve.Proto
module Shard = Wl_serve.Shard
module Server = Wl_serve.Server
module Client = Wl_serve.Client

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Error.to_string e)

let line3 () =
  (* 0 -> 1 -> 2 -> 3 with two overlapping paths: pi = 2, w = 2. *)
  let g = Wl_digraph.Digraph.create () in
  for _ = 0 to 3 do
    ignore (Wl_digraph.Digraph.add_vertex g)
  done;
  List.iter (fun (a, b) -> ignore (Wl_digraph.Digraph.add_arc g a b))
    [ (0, 1); (1, 2); (2, 3) ];
  ok_exn "line3" (Instance.of_vertex_seqs g [ [ 0; 1; 2 ]; [ 1; 2; 3 ] ])

(* --- wire framing ----------------------------------------------------------- *)

let test_wire () =
  let f = Wire.frame "hello" in
  check_int "frame length" (String.length f) 9;
  (match Wire.unframe f 0 with
  | Ok (p, off) ->
    Alcotest.(check string) "payload" "hello" p;
    check_int "offset" off 9
  | Error e -> Alcotest.failf "unframe: %s" (Error.to_string e));
  (match Wire.unframe_all (f ^ Wire.frame "world") with
  | Ok ps -> Alcotest.(check (list string)) "stream" [ "hello"; "world" ] ps
  | Error e -> Alcotest.failf "unframe_all: %s" (Error.to_string e));
  let parse_error what = function
    | Error (Error.Parse _) -> ()
    | Error e -> Alcotest.failf "%s: want Parse, got %s" what (Error.to_string e)
    | Ok _ -> Alcotest.failf "%s: decoded a corrupt frame" what
  in
  parse_error "empty" (Wire.unframe "" 0);
  parse_error "short prefix" (Wire.unframe "\000\000" 0);
  parse_error "zero length" (Wire.unframe "\000\000\000\000x" 0);
  parse_error "oversized" (Wire.unframe "\255\255\255\255x" 0);
  parse_error "truncated payload" (Wire.unframe (String.sub f 0 8) 0);
  check "writer refuses empty" true
    (match Wire.frame "" with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* --- protocol codecs --------------------------------------------------------- *)

let test_tenants () =
  check "plain ok" true (Proto.tenant_ok "build42");
  check "dots/dashes ok" true (Proto.tenant_ok "a.b-c_d");
  check "empty rejected" false (Proto.tenant_ok "");
  check "space rejected" false (Proto.tenant_ok "a b");
  check "newline rejected" false (Proto.tenant_ok "a\nb");
  check "slash rejected" false (Proto.tenant_ok "a/b");
  check "long rejected" false (Proto.tenant_ok (String.make 129 'x'));
  check "128 ok" true (Proto.tenant_ok (String.make 128 'x'))

let every_error =
  [
    Error.Parse { line = 7; msg = "bad token\nwith \\ escapes" };
    Error.Invalid_path "not a dipath";
    Error.Cyclic "cycle 1 -> 2 -> 1";
    Error.Bad_index { what = "path"; index = 5 };
    Error.Invalid_op "dead handle";
    Error.Precondition "tenant id";
    Error.Unsupported_version 3;
    Error.Io "broken pipe";
  ]

let test_error_frames () =
  (* Every constructor round-trips both encodings, and the frame carries
     the same sysexits code the CLI would exit with. *)
  List.iter
    (fun e ->
      List.iter
        (fun json ->
          match Proto.decode_reply (Proto.encode_reply ~json (Error e)) with
          | Ok (Error e') ->
            check "same error" true (e = e');
            check_int "same wire code" (Error.to_code e) (Error.to_code e')
          | Ok (Ok _) -> Alcotest.fail "error frame decoded as success"
          | Error e' ->
            Alcotest.failf "error frame did not decode: %s" (Error.to_string e'))
        [ false; true ])
    every_error

let test_request_roundtrip () =
  let inst = line3 () in
  let reqs =
    [
      Proto.Hello 1;
      Proto.Ping;
      Proto.Shutdown;
      Proto.Add_path { tenant = "t"; vertices = [ 0; 1; 2 ] };
      Proto.Remove_path { tenant = "t"; id = 0 };
      Proto.Add_arc { tenant = "t"; tail = 3; head = 0 };
      Proto.Submit
        { tenant = "t"; ops = [ Engine.Add_path [ 0; 1 ]; Engine.Remove_path 1 ] };
      Proto.Report { tenant = "t" };
      Proto.Pi { tenant = "t" };
      Proto.Color_of { tenant = "t"; id = 1 };
      Proto.Stats { tenant = "t" };
      Proto.Health { tenant = "t" };
      Proto.Snapshot { tenant = "t" };
      Proto.Evict { tenant = "t" };
    ]
  in
  List.iter
    (fun json ->
      List.iter
        (fun r ->
          match Proto.decode_request (Proto.encode_request ~json r) with
          | Ok r' -> check "request round trip" true (r = r')
          | Error e -> Alcotest.failf "decode: %s" (Error.to_string e))
        reqs;
      (* Open carries an instance; compare its serialized form. *)
      match
        Proto.decode_request
          (Proto.encode_request ~json (Proto.Open { tenant = "t"; instance = inst }))
      with
      | Ok (Proto.Open { tenant; instance }) ->
        Alcotest.(check string) "open tenant" "t" tenant;
        Alcotest.(check string) "open instance" (Serial.to_string inst)
          (Serial.to_string instance)
      | Ok _ -> Alcotest.fail "open decoded as another verb"
      | Error e -> Alcotest.failf "open decode: %s" (Error.to_string e))
    [ false; true ];
  check "bad tenant unrepresentable" true
    (match Proto.encode_request (Proto.Report { tenant = "a b" }) with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_addresses () =
  let round s expect =
    match Server.address_of_string s with
    | Ok a -> Alcotest.(check string) s expect (Server.address_to_string a)
    | Error e -> Alcotest.failf "%s: %s" s (Error.to_string e)
  in
  round "unix:/tmp/wld.sock" "unix:/tmp/wld.sock";
  round "/tmp/wld.sock" "unix:/tmp/wld.sock";
  round "./wld.sock" "unix:./wld.sock";
  round "tcp:localhost:7070" "tcp:localhost:7070";
  round "localhost:7070" "tcp:localhost:7070";
  List.iter
    (fun s ->
      check ("reject " ^ s) true
        (Result.is_error (Server.address_of_string s)))
    [ ""; "unix:"; "tcp:"; "tcp:host"; "tcp:host:0"; "tcp:host:notaport"; "plain" ]

(* --- loopback client --------------------------------------------------------- *)

let test_loopback () =
  let c = Client.local () in
  check_int "hello" (ok_exn "hello" (Client.hello c)) Proto.version;
  ok_exn "ping" (Client.ping c);
  let s = ok_exn "open" (Client.open_session c ~tenant:"t1" (line3 ())) in
  check_int "pi" (ok_exn "pi" (Client.pi s)) 2;
  let id = ok_exn "add" (Client.add_path s [ 0; 1 ]) in
  let r = ok_exn "report" (Client.report s) in
  check_int "w = pi" r.Proto.n_wavelengths r.Proto.pi;
  check "optimal" true r.Proto.optimal;
  let c0 = ok_exn "color" (Client.color_of s id) in
  check "color in palette" true (c0 >= 0 && c0 < r.Proto.n_wavelengths);
  (match Client.remove_path s 99 with
  | Error (Error.Bad_index _) -> ()
  | Error e -> Alcotest.failf "want Bad_index, got %s" (Error.to_string e)
  | Ok () -> Alcotest.fail "removed a path that never existed");
  ok_exn "remove" (Client.remove_path s id);
  let snap = ok_exn "snapshot" (Client.snapshot s) in
  check_int "snapshot paths" (Instance.n_paths snap) 2;
  let st = ok_exn "stats" (Client.stats s) in
  check_int "ops accepted" st.Engine.ops 2;
  let h = ok_exn "health" (Client.health s) in
  check "healthy" true h.Proto.healthy;
  ok_exn "evict" (Client.evict s);
  (match Client.pi s with
  | Error (Error.Invalid_op _) -> ()
  | _ -> Alcotest.fail "evicted session still answers");
  (* Sessions on a second tenant are independent. *)
  let s2 = ok_exn "open t2" (Client.open_session c ~tenant:"t2" (line3 ())) in
  check_int "t2 pi" (ok_exn "pi" (Client.pi s2)) 2;
  Client.close c;
  (match Client.ping c with
  | Error (Error.Invalid_op _) -> ()
  | _ -> Alcotest.fail "closed client still answers")

let test_loopback_json_and_batch () =
  let c = Client.local ~json:true ~shards:2 () in
  let s = ok_exn "open" (Client.open_session c ~tenant:"batch" (line3 ())) in
  let b =
    ok_exn "submit"
      (Client.submit s
         [ Engine.Add_path [ 0; 1 ]; Engine.Add_path [ 9; 9 ]; Engine.Remove_path 0 ])
  in
  check_int "outcomes" (Array.length b.Client.outcomes) 3;
  check "first accepted" true
    (match b.Client.outcomes.(0) with Ok (Proto.O_path _) -> true | _ -> false);
  check "second rejected" true (Result.is_error b.Client.outcomes.(1));
  check "third accepted" true
    (match b.Client.outcomes.(2) with Ok (Proto.O_removed 0) -> true | _ -> false);
  (* [0;1;2] is gone: the two survivors ([1;2;3], [0;1]) are arc-disjoint. *)
  check_int "after pi" b.Client.after.Proto.pi 1;
  Client.close c

(* --- trace context on the wire ----------------------------------------------- *)

module Ctx = Wl_obs.Ctx
module Trace = Wl_obs.Trace
module Hdr = Wl_obs.Hdr

let test_ctx_on_the_wire () =
  let g = Ctx.generator 31 in
  let ctx = Ctx.child g (Ctx.root g) in
  List.iter
    (fun json ->
      let tag = if json then "json" else "text" in
      let req = Proto.Ping in
      (match Proto.decode_request_ctx (Proto.encode_request ~json ~ctx req) with
      | Ok (Proto.Ping, c) ->
        check (tag ^ " trace id carried") true (c.Ctx.trace_id = ctx.Ctx.trace_id);
        check (tag ^ " span id carried") true (c.Ctx.span_id = ctx.Ctx.span_id);
        check (tag ^ " parent not carried") true (c.Ctx.parent_id = 0)
      | Ok _ -> Alcotest.failf "%s: ctx frame decoded as another verb" tag
      | Error e -> Alcotest.failf "%s: %s" tag (Error.to_string e));
      (* The untraced encoding is byte-identical to the pre-context
         protocol: that equality is what keeps old peers compatible. *)
      Alcotest.(check string)
        (tag ^ " Ctx.none encodes nothing")
        (Proto.encode_request ~json req)
        (Proto.encode_request ~json ~ctx:Ctx.none req);
      match Proto.decode_request_ctx (Proto.encode_request ~json req) with
      | Ok (Proto.Ping, c) ->
        check (tag ^ " absent ctx decodes to none") true (Ctx.is_none c)
      | _ -> Alcotest.failf "%s: untraced frame mishandled" tag)
    [ false; true ]

(* --- daemon introspection ----------------------------------------------------- *)

let with_memory_trace f =
  let sink = Trace.memory () in
  Trace.set_sink sink;
  Fun.protect ~finally:Trace.clear (fun () -> f sink)

let test_introspection () =
  (* Loopback daemon with several tenants; requests run traced so the
     engine latches exemplars.  The dstats rollup must equal a manual
     Hdr.merge_into over the drained sessions' histograms — introspection
     is a read-side projection, not a second bookkeeping path. *)
  with_memory_trace (fun _sink ->
      let shard = Shard.create ~threaded:false ~shards:2 ~max_queue:64 () in
      let c = Client.of_shard ~seed:77 shard in
      let n_adds = [ ("alpha", 4); ("beta", 2); ("gamma", 5) ] in
      List.iter
        (fun (tenant, n) ->
          let s = ok_exn "open" (Client.open_session c ~tenant (line3 ())) in
          for _ = 1 to n do
            ignore (ok_exn "add" (Client.add_path s [ 0; 1 ]));
            ok_exn "remove"
              (Client.remove_path s
                 (ok_exn "add2" (Client.add_path s [ 2; 3 ])))
          done)
        n_adds;
      let d = ok_exn "dstats" (Client.daemon_stats c) in
      check_int "shards" 2 d.Proto.d_shards;
      check_int "sessions" 3 d.Proto.d_sessions;
      check_int "tenant rows" 3 (List.length d.Proto.d_tenants);
      check "rows sorted by tenant" true
        (List.map (fun r -> r.Proto.r_tenant) d.Proto.d_tenants
        = [ "alpha"; "beta"; "gamma" ]);
      List.iter
        (fun r ->
          let n = List.assoc r.Proto.r_tenant n_adds in
          (* open solves, then n (add, add, remove) rounds leave n+1 paths. *)
          check_int (r.Proto.r_tenant ^ " paths") (2 + n) r.Proto.r_paths;
          check_int (r.Proto.r_tenant ^ " ops") (3 * n) r.Proto.r_ops;
          check (r.Proto.r_tenant ^ " healthy") true r.Proto.r_healthy;
          check (r.Proto.r_tenant ^ " shard in range") true
            (r.Proto.r_shard >= 0 && r.Proto.r_shard < 2))
        d.Proto.d_tenants;
      let total_adds = List.fold_left (fun a (_, n) -> a + (2 * n)) 0 n_adds in
      check_int "add rollup count" total_adds d.Proto.d_add.Proto.l_count;
      check "traced requests latched an add exemplar" true
        (d.Proto.d_add.Proto.l_ex_trace <> 0);
      (* Introspection must not perturb what it reports. *)
      let d2 = ok_exn "dstats again" (Client.daemon_stats c) in
      check "dstats is read-only" true (d = d2);
      let h = ok_exn "dhealth" (Client.daemon_health c) in
      check "daemon healthy" true h.Proto.dh_healthy;
      check_int "dhealth sessions" 3 h.Proto.dh_sessions;
      check "no unhealthy tenants" true (h.Proto.dh_unhealthy = []);
      (* The merged-trace endpoint returns a valid Chrome document
         covering every tenant's flight ring. *)
      let doc = ok_exn "trace pull" (Client.trace_pull c) in
      (match Trace.validate_chrome doc with
      | Ok n -> check "trace has the churn" true (n >= total_adds)
      | Error e -> Alcotest.fail ("pulled trace invalid: " ^ e));
      let doc1 = ok_exn "trace pull last" (Client.trace_pull ~last:1 c) in
      (match Trace.validate_chrome doc1 with
      | Ok n -> check_int "last=1 keeps one op per ring" 3 n
      | Error e -> Alcotest.fail ("trimmed trace invalid: " ^ e));
      (* Ground truth: merge the drained sessions' histograms by hand and
         compare against the wire rollup, field for field. *)
      let sessions = Shard.drain shard in
      check_int "drained all sessions" 3 (List.length sessions);
      let merged = Hdr.create () in
      List.iter
        (fun (_, s) -> Hdr.merge_into ~dst:merged (Engine.add_hdr s))
        sessions;
      check_int "rollup count = manual merge" (Hdr.count merged)
        d.Proto.d_add.Proto.l_count;
      check_int "rollup p50 = manual merge" (Hdr.quantile merged 0.5)
        d.Proto.d_add.Proto.l_p50;
      check_int "rollup p99 = manual merge" (Hdr.quantile merged 0.99)
        d.Proto.d_add.Proto.l_p99;
      check_int "rollup max = manual merge" (Hdr.max_value merged)
        d.Proto.d_add.Proto.l_max;
      match Hdr.exemplar merged with
      | None -> Alcotest.fail "manual merge lost the exemplar"
      | Some (ns, trace) ->
        check_int "exemplar ns = manual merge" ns d.Proto.d_add.Proto.l_ex_ns;
        check_int "exemplar trace = manual merge" trace
          d.Proto.d_add.Proto.l_ex_trace)

let test_traced_call_span_tree () =
  (* One traced request through the sync loopback produces the full span
     family — client.call, wire.codec, serve.queue_wait, serve.batch,
     serve.engine — all stamped with one trace id. *)
  with_memory_trace (fun sink ->
      let c = Client.local ~seed:5 () in
      let s = ok_exn "open" (Client.open_session c ~tenant:"t" (line3 ())) in
      ignore (ok_exn "add" (Client.add_path s [ 0; 1 ]));
      Client.close c;
      let events = Trace.events sink in
      let traces =
        List.filter_map
          (fun e ->
            List.find_map
              (function "trace", Trace.Str t -> Some t | _ -> None)
              e.Trace.args)
          events
      in
      check "spans carry trace args" true (traces <> []);
      List.iter
        (fun name ->
          check ("span " ^ name ^ " present") true
            (List.exists (fun e -> e.Trace.name = name) events))
        [ "client.call"; "wire.codec"; "serve.queue_wait"; "serve.batch";
          "serve.engine" ];
      (* Every open/add span family shares one trace id per request, and
         distinct requests get distinct trace ids. *)
      let module SS = Set.Make (String) in
      let distinct = SS.of_list traces in
      check "one trace id per request" true (SS.cardinal distinct >= 2))

(* --- unix-socket daemon ------------------------------------------------------ *)

let test_daemon_roundtrip () =
  let path = Filename.temp_file "wld_test" ".sock" in
  Sys.remove path;
  let shard = Shard.create ~threaded:true ~shards:2 ~max_queue:64 () in
  let srv =
    ok_exn "serve" (Server.serve ~shard (Server.Unix_sock path))
  in
  let c = ok_exn "connect" (Client.connect ("unix:" ^ path)) in
  check_int "hello" (ok_exn "hello" (Client.hello c)) Proto.version;
  let s = ok_exn "open" (Client.open_session c ~tenant:"remote" (line3 ())) in
  let id = ok_exn "add" (Client.add_path s [ 1; 2; 3 ]) in
  check_int "pi over the wire" (ok_exn "pi" (Client.pi s)) 3;
  ok_exn "remove" (Client.remove_path s id);
  (* A second client sees the same tenant: state lives server-side. *)
  let c2 = ok_exn "connect2" (Client.connect ~json:true ("unix:" ^ path)) in
  let s2 = ok_exn "session2" (Client.session c2 ~tenant:"remote") in
  check_int "shared pi" (ok_exn "pi2" (Client.pi s2)) 2;
  ok_exn "shutdown" (Client.shutdown_server c2);
  Client.close c2;
  Client.close c;
  let drained = Server.wait srv in
  check_int "one session at drain" (List.length drained) 1;
  (match drained with
  | [ (tenant, sess) ] ->
    Alcotest.(check string) "tenant" "remote" tenant;
    check "drained healthy" true (Engine.health sess).Engine.healthy
  | _ -> Alcotest.fail "unexpected drain listing");
  check "socket unlinked" false (Sys.file_exists path)

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "wire framing" `Quick test_wire;
        Alcotest.test_case "tenant ids" `Quick test_tenants;
        Alcotest.test_case "error frames" `Quick test_error_frames;
        Alcotest.test_case "request round trips" `Quick test_request_roundtrip;
        Alcotest.test_case "addresses" `Quick test_addresses;
        Alcotest.test_case "loopback client" `Quick test_loopback;
        Alcotest.test_case "json loopback batch" `Quick test_loopback_json_and_batch;
        Alcotest.test_case "ctx on the wire" `Quick test_ctx_on_the_wire;
        Alcotest.test_case "daemon introspection" `Quick test_introspection;
        Alcotest.test_case "traced call span tree" `Quick
          test_traced_call_span_tree;
        Alcotest.test_case "unix socket daemon" `Quick test_daemon_roundtrip;
      ] );
  ]
