(** Theorem 2: a DAG with an internal cycle admits a family with
    [pi = 2 < 3 = w].

    Given an internal cycle in canonical form ([k] peaks [b_i], [k] valleys
    [c_i], segments [down_i : b_i ~> c_i] and [up_i : b_{i+1} ~> c_i]), the
    construction emits [2k + 1] dipaths

    {ul
    {- [a_1 . down_1] and [down_1 . d_1],}
    {- for [i = 2..k]: [a_i . up_{i-1} . d_{i-1}] and [a_i . down_i . d_i],}
    {- [a_1 . up_k . d_k],}}

    where [a_i] is any predecessor of [b_i] and [d_i] any successor of
    [c_i] — they exist precisely because the cycle is internal, and
    acyclicity makes every concatenation a simple dipath.  The conflict
    graph is the odd cycle [C_{2k+1}], so two wavelengths per arc suffice
    for the load but three are needed to color. *)

open Wl_dag

val family_from_canonical : Dag.t -> Internal_cycle.canonical -> Wl_digraph.Dipath.t list
(** The [2k + 1] dipaths above.  Raises [Invalid_argument] if the canonical
    cycle is not internal (no predecessor/successor where needed). *)

val build : Dag.t -> Instance.t option
(** Finds an internal cycle and wraps the family into an instance;
    [None] when the DAG has no internal cycle (Theorem 1 territory). *)

val replicate : Instance.t -> int -> Instance.t
(** [replicate inst h] repeats every family member [h] times — the paper's
    device (end of Section 4) to scale [pi] while keeping the conflict
    structure: on the Theorem 2 family it yields [pi = 2h] and
    [w = ceil(5h/2)] when [k = 2]. *)
