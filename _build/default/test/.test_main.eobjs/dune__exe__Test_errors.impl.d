test/test_errors.ml: Alcotest Baselines Bounds Digraph Dipath Grooming Helpers Instance List Load Replication Wl_conflict Wl_core Wl_dag Wl_digraph Wl_netgen Wl_util
