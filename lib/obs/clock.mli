(** Monotonic time for spans and latency metrics.

    A single time source keeps trace timestamps, metric latencies and
    bench measurements comparable.  The source is
    [clock_gettime(CLOCK_MONOTONIC)] via a local C stub (the [unix]
    library has no binding for it), so wall-clock steps — NTP slews,
    manual resets — cannot corrupt span durations or [ns_per_op]
    figures, which the previous [Unix.gettimeofday]-based implementation
    allowed.  Resolution is whatever the kernel provides (ns granularity
    on Linux); readings are allocation-free. *)

val now_ns : unit -> int
(** Nanoseconds since a process-local origin taken at module init (so
    chrome-trace timestamps start near zero).  Monotone by construction;
    subtraction of two readings is the only supported use. *)

val now_us : unit -> float
(** Same instant as {!now_ns}, in microseconds. *)
