module Internal_cycle = Wl_dag.Internal_cycle
module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace

let c_solves = Metrics.counter "thm6multi.solves"
let h_depth = Metrics.histogram "thm6multi.recursion_depth"

type level = { depth : int; stats : Theorem6.stats }

let color_with_stats ?(check = true) inst =
  if check then Theorem6.check_hypotheses ~exact_one:false (Instance.dag inst);
  Metrics.incr c_solves;
  let levels = ref [] in
  let rec solve depth inst =
    if Internal_cycle.count_independent (Instance.dag inst) = 0 then
      Theorem1.color inst
    else begin
      let assignment, stats =
        Theorem6.split_and_glue ~subcolor:(solve (depth + 1)) inst
      in
      levels := { depth; stats } :: !levels;
      assignment
    end
  in
  let assignment = Trace.with_span "thm6multi.color" (fun () -> solve 0 inst) in
  Metrics.observe h_depth (List.length !levels);
  (assignment, List.sort (fun a b -> compare a.depth b.depth) !levels)

let color ?check inst = fst (color_with_stats ?check inst)

let upper_bound = Bounds.theorem6_upper
