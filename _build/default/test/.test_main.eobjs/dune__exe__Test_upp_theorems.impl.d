test/test_upp_theorems.ml: Alcotest Digraph Dipath Helpers List Upp_theorems Wl_core Wl_dag Wl_digraph Wl_netgen Wl_util
