(** Minimal JSON values, parser and printer (no external dependencies).

    Backs the machine-readable mirrors of the text formats: instance files
    ({!Wl_core.Serial}) and engine op scripts ({!Wl_engine.Script}).  The
    parser is strict RFC-8259 apart from two deliberate simplifications:
    numbers without [.], [e] or [E] parse as [Int] (everything else as
    [Float]), and [\uXXXX] escapes are encoded to UTF-8 code-point by
    code-point (surrogate pairs are not merged). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Error messages carry the (1-based) line of the offending byte. *)

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents objects and arrays by two
    spaces. *)

(** {1 Accessors} — all total, [None] on shape mismatch. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]. *)

val to_int : t -> int option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
