(** Graph traversals: BFS, DFS, topological order, reachability.

    These are the workhorses beneath the DAG analysis: topological order
    drives the Theorem 1 arc peeling; reachability defines the sets [A_a] and
    [S_b] of Theorem 6. *)

val bfs_order : Digraph.t -> Digraph.vertex -> Digraph.vertex list
(** Vertices reachable from the source, in BFS order (source first). *)

val bfs_dist : Digraph.t -> Digraph.vertex -> int array
(** Arc-count distances from the source; unreachable vertices get [-1]. *)

val bfs_parent_path :
  Digraph.t -> Digraph.vertex -> Digraph.vertex -> Digraph.vertex list option
(** A shortest dipath (as a vertex sequence) from [src] to [dst], if one
    exists.  [Some [src]] when [src = dst]. *)

val dfs_postorder : Digraph.t -> Digraph.vertex list
(** Postorder over the whole graph (all roots), following out-arcs. *)

val topological_order : Digraph.t -> Digraph.vertex list option
(** Kahn's algorithm: [Some order] (sources first) iff the graph is acyclic. *)

val is_acyclic : Digraph.t -> bool

val find_directed_cycle : Digraph.t -> Digraph.vertex list option
(** A directed cycle as a vertex sequence [v1; ...; vk] with arcs
    [v1->v2->...->vk->v1], if the graph has one. *)

val reachable_from : Digraph.t -> Digraph.vertex -> bool array
(** [reachable_from g v] marks every vertex reachable from [v] by a dipath
    (including [v] itself). *)

val reaching_to : Digraph.t -> Digraph.vertex -> bool array
(** Vertices from which [v] is reachable (including [v]). *)

val reachability_matrix : Digraph.t -> Wl_util.Bitset.t array
(** [m.(v)] is the set of vertices reachable from [v] (including [v]).
    O(n·m/w) via bitset DP over the reverse topological order when the graph
    is acyclic; falls back to per-vertex BFS otherwise. *)

val undirected_components : Digraph.t -> int array * int
(** Connected components of the underlying undirected graph:
    [(component_id per vertex, component count)]. *)

val undirected_cycle :
  ?keep_arc:(Digraph.arc -> bool) ->
  Digraph.t ->
  (Digraph.arc * bool) list option
(** A cycle of the underlying undirected multigraph, as a closed walk of
    arcs: [(arc, forward?)] where [forward = true] means the arc is traversed
    from its source to its destination.  Consecutive items share the obvious
    endpoint, and the walk returns to its starting vertex.  [None] when the
    underlying graph is a forest.  [keep_arc] restricts the search to the
    sub-multigraph of arcs it accepts (default: all arcs).

    In a DAG, such a cycle is exactly an "oriented cycle" in the paper's
    sense. *)
