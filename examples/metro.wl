# A 6-stop metro line with a branch — no internal cycle, so the
# incremental engine stays in its warm (Theorem 1) regime.
wl 2
dag 7
vlabel 0 west
vlabel 1 center
vlabel 2 east
vlabel 3 port
vlabel 4 airport
vlabel 5 depot
vlabel 6 expo
arc 0 1
arc 1 2
arc 2 3
arc 3 4
arc 1 5
arc 5 6
path 0 1 2
path 2 3 4
path 1 2 3
path 0 1 5
path 5 6
