(* Tests for the text instance format. *)

open Helpers
open Wl_core
module Digraph = Wl_digraph.Digraph
module Dipath = Wl_digraph.Dipath

let roundtrip inst =
  match Serial.of_string (Serial.to_string inst) with
  | Error msg -> Alcotest.failf "reparse failed: %s" msg
  | Ok inst' ->
    Digraph.equal_structure (Instance.graph inst) (Instance.graph inst')
    && List.equal
         (fun p q -> Dipath.vertices p = Dipath.vertices q)
         (Instance.paths_list inst) (Instance.paths_list inst')

let test_roundtrip_figures () =
  List.iter
    (fun inst -> check "roundtrip" true (roundtrip inst))
    [
      Wl_netgen.Figures.fig3 ();
      Wl_netgen.Figures.fig5 3;
      Wl_netgen.Figures.havet 2;
      Wl_netgen.Figures.fig1 4;
    ]

let roundtrip_random =
  qtest "roundtrip on random instances" seed_gen ~count:40 (fun seed ->
      roundtrip (random_instance seed))

let test_labels_roundtrip () =
  let inst = Wl_netgen.Figures.fig3 () in
  match Serial.of_string (Serial.to_string inst) with
  | Error msg -> Alcotest.failf "reparse failed: %s" msg
  | Ok inst' ->
    check "labels preserved" true (Digraph.label (Instance.graph inst') 0 = "a1")

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let parse_error expected text =
  match Serial.of_string text with
  | Ok _ -> Alcotest.failf "expected parse error %S" expected
  | Error msg ->
    check (Printf.sprintf "error mentions %S (got %S)" expected msg) true
      (contains msg expected)

let test_parse_errors () =
  parse_error "missing 'dag" "# only a comment\n";
  parse_error "before 'dag'" "arc 0 1\ndag 2";
  parse_error "duplicate" "dag 2\ndag 3";
  parse_error "unknown directive" "dag 2\nfoo 1";
  parse_error "not an integer" "dag 2\narc 0 x";
  parse_error "no such vertex" "dag 2\narc 0 5";
  parse_error "missing arc" "dag 3\narc 0 1\npath 0 2";
  parse_error "out of range" "dag 2\nvlabel 7 z";
  parse_error "self-loop" "dag 2\narc 1 1"

let test_comments_and_blanks () =
  let text = "# header\n\ndag 3  # three vertices\narc 0 1\n  arc 1 2  \n\npath 0 1 2\n" in
  match Serial.of_string text with
  | Error msg -> Alcotest.failf "should parse: %s" msg
  | Ok inst ->
    check_int "paths" 1 (Instance.n_paths inst);
    check_int "arcs" 2 (Digraph.n_arcs (Instance.graph inst))

let test_file_io () =
  let inst = Wl_netgen.Figures.fig5 2 in
  let tmp = Filename.temp_file "wl_test" ".wl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Serial.write_file tmp inst;
      match Serial.read_file tmp with
      | Ok inst' ->
        check "file roundtrip" true
          (Digraph.equal_structure (Instance.graph inst) (Instance.graph inst'))
      | Error msg -> Alcotest.failf "read failed: %s" msg)

let test_rejects_directed_cycle () =
  parse_error "not a DAG" "dag 2\narc 0 1\narc 1 0"

(* Determinism across serialization: coloring the reparsed instance gives
   the same wavelengths (arc ids and family order round-trip intact). *)
let deterministic_through_io =
  qtest "theorem1 coloring survives a serialization roundtrip" seed_gen
    ~count:25 (fun seed ->
      let inst = random_nic_instance ~n:14 ~k:10 seed in
      match Serial.of_string (Serial.to_string inst) with
      | Error _ -> false
      | Ok inst' -> Theorem1.color inst = Theorem1.color inst')

let suite =
  [
    ( "serial",
      [
        Alcotest.test_case "figure roundtrips" `Quick test_roundtrip_figures;
        roundtrip_random;
        Alcotest.test_case "labels roundtrip" `Quick test_labels_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
        Alcotest.test_case "file io" `Quick test_file_io;
        Alcotest.test_case "rejects directed cycles" `Quick
          test_rejects_directed_cycle;
        deterministic_through_io;
      ] );
  ]
