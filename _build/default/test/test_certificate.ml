(* Tests for the report auditor. *)

open Helpers
open Wl_core
module Prng = Wl_util.Prng

let audits_clean =
  qtest "solver reports audit clean across generators" seed_gen ~count:60
    (fun seed ->
      let rng = Prng.create seed in
      let dag =
        match seed mod 4 with
        | 0 -> Wl_netgen.Generators.gnp_dag rng 12 0.25
        | 1 -> Wl_netgen.Generators.gnp_no_internal_cycle rng 14 0.25
        | 2 -> Wl_netgen.Generators.upp_one_internal_cycle rng ()
        | _ -> Wl_netgen.Generators.upp_internal_cycles rng ~cycles:2 ()
      in
      let inst = Wl_netgen.Path_gen.random_instance rng dag 10 in
      Certificate.audit inst (Solver.solve inst) = [])

let test_audits_figures () =
  List.iter
    (fun inst ->
      match Certificate.audit inst (Solver.solve inst) with
      | [] -> ()
      | issues -> Alcotest.failf "audit failed: %s" (String.concat "; " issues))
    [
      Wl_netgen.Figures.fig3 ();
      Wl_netgen.Figures.fig1 4;
      Wl_netgen.Figures.fig5 3;
      Wl_netgen.Figures.havet 2;
    ]

let test_detects_tampering () =
  let inst = Wl_netgen.Figures.fig3 () in
  let r = Solver.solve inst in
  let tampered_assignment =
    let a = Array.copy r.Solver.assignment in
    a.(0) <- a.(1);
    { r with Solver.assignment = a }
  in
  check "conflict detected" true (Certificate.audit inst tampered_assignment <> []);
  let tampered_pi = { r with Solver.pi = r.Solver.pi + 1 } in
  check "pi detected" true (Certificate.audit inst tampered_pi <> []);
  let tampered_count = { r with Solver.n_wavelengths = r.Solver.n_wavelengths + 1 } in
  check "count detected" true (Certificate.audit inst tampered_count <> []);
  let tampered_method = { r with Solver.method_used = Solver.Theorem_1 } in
  check "method misuse detected" true (Certificate.audit inst tampered_method <> []);
  Alcotest.check_raises "audit_exn raises"
    (Failure
       (match Certificate.audit inst tampered_pi with
       | issues -> "Certificate.audit: " ^ String.concat "; " issues))
    (fun () -> Certificate.audit_exn inst tampered_pi)

let suite =
  [
    ( "certificate",
      [
        audits_clean;
        Alcotest.test_case "paper figures" `Quick test_audits_figures;
        Alcotest.test_case "detects tampering" `Quick test_detects_tampering;
      ] );
  ]
