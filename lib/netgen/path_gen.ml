open Wl_digraph
module Dag = Wl_dag.Dag
module Prng = Wl_util.Prng

let extend_walk rng g start ~stop_probability =
  let rec go v acc =
    match Digraph.succ g v with
    | [] -> List.rev acc
    | succs ->
      if List.length acc > 1 && Prng.bernoulli rng stop_probability then List.rev acc
      else
        let w = Prng.choose_list rng succs in
        go w (w :: acc)
  in
  go start [ start ]

let random_walk rng dag =
  let g = Dag.graph dag in
  let n = Digraph.n_vertices g in
  if n = 0 then None
  else begin
    let start = Prng.int rng n in
    match extend_walk rng g start ~stop_probability:0.35 with
    | [ _ ] | [] -> None
    | verts -> Some (Dipath.make g verts)
  end

let random_family rng dag k =
  let has_arc = Dag.n_arcs dag > 0 in
  if not has_arc then []
  else begin
    let rec collect acc remaining attempts =
      if remaining = 0 || attempts = 0 then List.rev acc
      else
        match random_walk rng dag with
        | Some p -> collect (p :: acc) (remaining - 1) attempts
        | None -> collect acc remaining (attempts - 1)
    in
    collect [] k (k * 50)
  end

let source_sink_paths rng dag k =
  let g = Dag.graph dag in
  match Dag.sources dag with
  | [] -> []
  | sources ->
    let sources = Array.of_list sources in
    List.filter_map
      (fun _ ->
        let start = Prng.choose rng sources in
        match extend_walk rng g start ~stop_probability:0.0 with
        | [ _ ] | [] -> None
        | verts -> Some (Dipath.make g verts))
      (List.init k Fun.id)

let all_to_all_instance dag =
  match Wl_core.Routing.instance_of dag Wl_core.Routing.route_unique (Wl_core.Routing.all_to_all dag) with
  | Ok inst -> inst
  | Error e ->
    invalid_arg ("Path_gen.all_to_all_instance: " ^ Wl_core.Error.to_string e)

let random_instance rng dag k = Wl_core.Instance.make dag (random_family rng dag k)
