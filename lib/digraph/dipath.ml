type t = {
  verts : int array; (* >= 2 vertices, all distinct *)
  arc_ids : int array; (* length = |verts| - 1 *)
  arcs_sorted : int array; (* arc_ids sorted, for fast intersection *)
}

(* Exception-free validation; the raising entry points wrap it. *)
let validate g verts =
  let k = Array.length verts in
  if k < 2 then Error "Dipath: needs at least two vertices"
  else begin
    let seen = Hashtbl.create k in
    let dup = Array.exists (fun v ->
        Hashtbl.mem seen v || (Hashtbl.add seen v (); false))
        verts
    in
    if dup then Error "Dipath: repeated vertex"
    else if
      Array.exists
        (fun v -> v < 0 || v >= Digraph.n_vertices g)
        verts
    then Error "Dipath: no such vertex"
    else begin
      let missing = ref None in
      let arc_ids =
        Array.init (k - 1) (fun i ->
            match Digraph.find_arc g verts.(i) verts.(i + 1) with
            | Some a -> a
            | None ->
              if !missing = None then
                missing :=
                  Some
                    (Printf.sprintf "Dipath: missing arc %s -> %s"
                       (Digraph.label g verts.(i))
                       (Digraph.label g verts.(i + 1)));
              -1)
      in
      match !missing with Some msg -> Error msg | None -> Ok arc_ids
    end
  end

let of_vertex_array_result g verts =
  match validate g verts with
  | Error _ as e -> e
  | Ok arc_ids ->
    let arcs_sorted = Array.copy arc_ids in
    Array.sort compare arcs_sorted;
    Ok { verts = Array.copy verts; arc_ids; arcs_sorted }

let of_vertex_array g verts =
  match of_vertex_array_result g verts with
  | Ok p -> p
  | Error msg -> invalid_arg msg

let of_vertices g vertex_list = of_vertex_array_result g (Array.of_list vertex_list)

let make g vertex_list = of_vertex_array g (Array.of_list vertex_list)

let of_arcs g arc_list =
  match arc_list with
  | [] -> invalid_arg "Dipath.of_arcs: empty"
  | first :: _ ->
    let verts =
      Digraph.arc_src g first
      :: List.map (fun a -> Digraph.arc_dst g a) arc_list
    in
    let p = make g verts in
    if List.compare compare (Array.to_list p.arc_ids) arc_list <> 0 then
      invalid_arg "Dipath.of_arcs: arcs do not chain";
    p

let vertices p = Array.to_list p.verts
let vertex_array p = Array.copy p.verts
let arcs p = Array.to_list p.arc_ids
let arc_array p = Array.copy p.arc_ids
let unsafe_arc_array p = p.arc_ids
let src p = p.verts.(0)
let dst p = p.verts.(Array.length p.verts - 1)
let n_arcs p = Array.length p.arc_ids

let mem_vertex p v = Array.exists (Int.equal v) p.verts

let mem_arc p a =
  (* Binary search in the sorted arc ids. *)
  let lo = ref 0 and hi = ref (Array.length p.arcs_sorted - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x = p.arcs_sorted.(mid) in
    if x = a then found := true
    else if x < a then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let vertex_index p v =
  let n = Array.length p.verts in
  let rec go i = if i >= n then None else if p.verts.(i) = v then Some i else go (i + 1) in
  go 0

let concat g p q =
  if dst p <> src q then invalid_arg "Dipath.concat: endpoints do not match";
  let verts = Array.append p.verts (Array.sub q.verts 1 (Array.length q.verts - 1)) in
  of_vertex_array g verts

let sub g p i j =
  let k = Array.length p.verts in
  if i < 0 || j >= k || i >= j then invalid_arg "Dipath.sub: bad indices";
  of_vertex_array g (Array.sub p.verts i (j - i + 1))

let sub_between g p x y =
  match (vertex_index p x, vertex_index p y) with
  | Some i, Some j when i < j -> sub g p i j
  | _ -> invalid_arg "Dipath.sub_between: vertices not on path in this order"

let shares_arc p q =
  (* Merge scan over sorted arc ids. *)
  let a = p.arcs_sorted and b = q.arcs_sorted in
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if i >= la || j >= lb then false
    else if a.(i) = b.(j) then true
    else if a.(i) < b.(j) then go (i + 1) j
    else go i (j + 1)
  in
  go 0 0

let shared_arcs p q =
  List.filter (fun a -> mem_arc q a) (arcs p)

let intersection_interval g p q =
  match shared_arcs p q with
  | [] -> None
  | common ->
    (* Check contiguity on p: the shared arcs must be consecutive in p's arc
       sequence; same on q; and in the same order. *)
    let on_p = Array.to_list p.arc_ids in
    let rec positions target lst i acc =
      match lst with
      | [] -> List.rev acc
      | a :: rest ->
        positions target rest (i + 1) (if List.mem a target then i :: acc else acc)
    in
    let pos_p = positions common on_p 0 [] in
    let contiguous l =
      let rec go = function
        | a :: (b :: _ as rest) -> b = a + 1 && go rest
        | _ -> true
      in
      go l
    in
    let on_q = Array.to_list q.arc_ids in
    let pos_q = positions common on_q 0 [] in
    if not (contiguous pos_p && contiguous pos_q) then
      invalid_arg "Dipath.intersection_interval: not a single interval";
    let arcs_in_p_order = List.filter (fun a -> List.mem a common) on_p in
    let arcs_in_q_order = List.filter (fun a -> List.mem a common) on_q in
    if arcs_in_p_order <> arcs_in_q_order then
      invalid_arg "Dipath.intersection_interval: interval orders differ";
    let first = List.hd arcs_in_p_order in
    let last = List.nth arcs_in_p_order (List.length arcs_in_p_order - 1) in
    Some (Digraph.arc_src g first, Digraph.arc_dst g last)

let equal p q = p.verts = q.verts

let compare p q = compare p.verts q.verts

let pp g ppf p =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
    (fun ppf v -> Format.pp_print_string ppf (Digraph.label g v))
    ppf (vertices p)

let to_string g p = Format.asprintf "%a" (pp g) p
