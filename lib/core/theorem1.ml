open Wl_digraph
module Dag = Wl_dag.Dag
module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace

(* Solver-internals counters (all no-ops until [Metrics.set_enabled]).
   The case names follow the paper's proof of Theorem 1: a same-colored
   pair at an insertion is resolved by a Kempe flip that either stays away
   from the protected dipath (case A), would revisit an already-flipped
   dipath (case B — impossible, the stamp assert enforces it; the counter
   records how many times the guard was exercised), or reaches the
   protected dipath (case C: an internal cycle exists and we abort). *)
let c_arcs_peeled = Metrics.counter "thm1.arcs_peeled"
let c_case_a = Metrics.counter "thm1.case_a_flips"
let c_case_b = Metrics.counter "thm1.case_b_checks"
let c_case_c = Metrics.counter "thm1.case_c_aborts"
let c_fresh = Metrics.counter "thm1.fresh_colors"
let h_cascade = Metrics.histogram "thm1.cascade_len"

exception
  Internal_cycle_encountered of {
    chain : int list;
    junction : Digraph.vertex;
  }

(* The solver state is all flat arrays.  Scratch marks use generation
   stamps ([mark.(x) = gen] means "marked in the current round"), so a
   whole [color] run performs O(total path length) allocations — building
   the state — and none in the insertion/cascade loops. *)
type state = {
  inst : Instance.t;
  p_arcs : int array array; (* arc ids of each family dipath, front to back *)
  start_pos : int array; (* index of first live arc; = length when inactive *)
  color : int array; (* -1 while uncolored *)
  (* Live occupancy, CSR-shaped over the instance index: the occupants of
     arc [a] are [occ.(occ_off.(a)) .. occ.(occ_off.(a) + occ_len.(a) - 1)].
     Occupancy only grows, and occupants of [a] are always a subset of the
     family members through [a], so the instance offsets fit exactly. *)
  occ_off : int array;
  occ_len : int array;
  occ : int array;
  mutable palette : int; (* current number of colors = running max load *)
  mutable gen : int; (* shared generation counter for all stamp scratch *)
  seen : int array; (* per member: stamp for conflict dedup *)
  visit : int array; (* per member: stamp for Kempe BFS discovery *)
  flipped : int array; (* per member: stamp asserting single recoloring *)
  parent : int array; (* per member: Kempe BFS tree, valid when visited *)
  queue : int array; (* Kempe BFS queue, capacity n_paths *)
  conflicts : int array; (* live_conflicts output buffer, capacity n_paths *)
  members : int array; (* live members of the arc being inserted *)
  col_stamp : int array; (* per color: stamp for duplicate detection *)
  col_owner : int array; (* per color: member last seen wearing it *)
}

let make_state inst =
  let g = Instance.graph inst in
  let p_arcs = Array.map Dipath.arc_array (Instance.paths inst) in
  let n = Array.length p_arcs in
  let off, ids = Instance.csr_index inst in
  {
    inst;
    p_arcs;
    start_pos = Array.map Array.length p_arcs;
    color = Array.make n (-1);
    occ_off = off;
    occ_len = Array.make (max 1 (Digraph.n_arcs g)) 0;
    occ = Array.make (Array.length ids) 0;
    palette = 0;
    gen = 0;
    seen = Array.make (max 1 n) 0;
    visit = Array.make (max 1 n) 0;
    flipped = Array.make (max 1 n) 0;
    parent = Array.make (max 1 n) (-1);
    queue = Array.make (max 1 n) 0;
    conflicts = Array.make (max 1 n) 0;
    members = Array.make (max 1 n) 0;
    (* Colors never reach n: palette = running max load <= n and every
       assigned color is < palette (plus fresh ones below it). *)
    col_stamp = Array.make (max 1 n) 0;
    col_owner = Array.make (max 1 n) 0;
  }

let next_gen st =
  st.gen <- st.gen + 1;
  st.gen

let is_live st p = st.start_pos.(p) < Array.length st.p_arcs.(p)

(* Live family indices conflicting with [p] (sharing a live arc), written
   into [st.conflicts]; returns their count. *)
let live_conflicts st p =
  let g = next_gen st in
  st.seen.(p) <- g;
  let arcs = st.p_arcs.(p) in
  let cnt = ref 0 in
  for k = st.start_pos.(p) to Array.length arcs - 1 do
    let a = arcs.(k) in
    let base = st.occ_off.(a) in
    for j = base to base + st.occ_len.(a) - 1 do
      let q = st.occ.(j) in
      if st.seen.(q) <> g then begin
        st.seen.(q) <- g;
        st.conflicts.(!cnt) <- q;
        incr cnt
      end
    done
  done;
  !cnt

(* Flip the Kempe component of [p1] in the {alpha, beta} conflict subgraph,
   leaving [protected_p] untouched.  If the component reaches [protected_p],
   raise with the BFS chain from p1 to it (the paper's case C). *)
let kempe_flip st ~protected_p ~junction ~alpha ~beta p1 =
  let g = next_gen st in
  st.visit.(p1) <- g;
  st.parent.(p1) <- p1;
  let head = ref 0 and tail = ref 0 in
  st.queue.(!tail) <- p1;
  incr tail;
  let chain_to q =
    let rec go v acc =
      let p = st.parent.(v) in
      if p = v then v :: acc else go p (v :: acc)
    in
    go q []
  in
  while !head < !tail do
    let p = st.queue.(!head) in
    incr head;
    (* Proof case B: a dipath is never recolored twice. *)
    assert (st.flipped.(p) <> g);
    st.flipped.(p) <- g;
    let other = if st.color.(p) = alpha then beta else alpha in
    let n_conf = live_conflicts st p in
    for i = 0 to n_conf - 1 do
      let q = st.conflicts.(i) in
      if st.color.(q) = other && st.visit.(q) <> g then begin
        st.visit.(q) <- g;
        st.parent.(q) <- p;
        if q = protected_p then begin
          Metrics.incr c_case_c;
          raise (Internal_cycle_encountered { chain = chain_to q; junction })
        end;
        st.queue.(!tail) <- q;
        incr tail
      end
    done;
    st.color.(p) <- other
  done;
  (* [!tail] dipaths were discovered and flipped: the cascade length. *)
  Metrics.incr c_case_a;
  Metrics.add c_case_b !tail;
  Metrics.observe h_cascade !tail

(* Make all live dipaths through the about-to-be-inserted arc use pairwise
   distinct colors, by repeated Kempe flips.  The members are the first
   [n_members] entries of [st.members], live, in ascending family order. *)
let make_rainbow st ~junction n_members =
  (* First pair of members wearing the same color, in member order. *)
  let distinct_violated () =
    let g = next_gen st in
    let found = ref None in
    let i = ref 0 in
    while !found = None && !i < n_members do
      let p = st.members.(!i) in
      let c = st.color.(p) in
      if st.col_stamp.(c) = g then found := Some (st.col_owner.(c), p)
      else begin
        st.col_stamp.(c) <- g;
        st.col_owner.(c) <- p
      end;
      incr i
    done;
    !found
  in
  let rec fix () =
    match distinct_violated () with
    | None -> ()
    | Some (p0, p1) ->
      let alpha = st.color.(p0) in
      (* beta: a palette color unused by the whole member set. *)
      let g = next_gen st in
      for i = 0 to n_members - 1 do
        st.col_stamp.(st.color.(st.members.(i))) <- g
      done;
      let beta =
        let rec first c =
          if c >= st.palette then
            invalid_arg "Theorem1: no free color (load accounting broken)"
          else if st.col_stamp.(c) = g then first (c + 1)
          else c
        in
        first 0
      in
      kempe_flip st ~protected_p:p0 ~junction ~alpha ~beta p1;
      fix ()
  in
  fix ()

let insert_arc st e =
  let through = Instance.n_paths_through st.inst e in
  if through > 0 then begin
    Metrics.incr c_arcs_peeled;
    st.palette <- max st.palette through;
    let n_members = ref 0 in
    Instance.paths_through_iter st.inst e (fun p ->
        if is_live st p then begin
          st.members.(!n_members) <- p;
          incr n_members
        end);
    let n_members = !n_members in
    make_rainbow st ~junction:(Digraph.arc_dst (Instance.graph st.inst) e)
      n_members;
    (* Extend every dipath through [e] over it; newly activated ones get the
       palette colors not used by the live members. *)
    let g = next_gen st in
    for i = 0 to n_members - 1 do
      st.col_stamp.(st.color.(st.members.(i))) <- g
    done;
    let next_free = ref 0 in
    let fresh_color () =
      while st.col_stamp.(!next_free) = g do
        incr next_free
      done;
      let c = !next_free in
      incr next_free;
      Metrics.incr c_fresh;
      c
    in
    Instance.paths_through_iter st.inst e (fun p ->
        if not (is_live st p) then st.color.(p) <- fresh_color ();
        let k = st.start_pos.(p) - 1 in
        assert (st.p_arcs.(p).(k) = e);
        st.start_pos.(p) <- k;
        st.occ.(st.occ_off.(e) + st.occ_len.(e)) <- p;
        st.occ_len.(e) <- st.occ_len.(e) + 1)
  end

let color_impl inst =
  let st = make_state inst in
  let order = Dag.arcs_by_tail_topo (Instance.dag inst) in
  for i = Array.length order - 1 downto 0 do
    insert_arc st order.(i)
  done;
  (* Every dipath is fully live and colored now. *)
  Array.iteri (fun p c -> assert (c >= 0 || Array.length st.p_arcs.(p) = 0)) st.color;
  Array.copy st.color

let color inst =
  if Trace.enabled () then
    Trace.with_span
      ~args:[ ("paths", Trace.Int (Instance.n_paths inst)) ]
      "thm1.color"
      (fun () -> color_impl inst)
  else color_impl inst

let color_result inst =
  match color inst with
  | assignment -> Ok assignment
  | exception Internal_cycle_encountered { chain; junction } ->
    Error (chain, junction)

let colors_used inst =
  Assignment.n_wavelengths (Assignment.normalize (color inst))

(* The paper's case-C extraction (its Figure 4): follow the chain of
   pairwise-conflicting dipaths around, from the junction back to the
   junction; every arc traversed an odd number of times survives into a
   non-empty even subgraph whose vertices all lie on the walk — and every
   walk vertex has both a predecessor and a successor in G (interval
   endpoints head shared arcs, interior vertices are path-interior), so any
   undirected cycle of the parity subgraph is an internal cycle. *)
let witness_internal_cycle inst ~chain ~junction =
  let g = Instance.graph inst in
  match chain with
  | [] | [ _ ] -> None
  | _ ->
    let paths = Array.of_list (List.map (Instance.path inst) chain) in
    let m = Array.length paths in
    let first_shared i =
      let rec go = function
        | [] -> None
        | a :: rest -> if Dipath.mem_arc paths.(i + 1) a then Some a else go rest
      in
      go (Dipath.arcs paths.(i))
    in
    let parity = Hashtbl.create 32 in
    let flip a =
      if Hashtbl.mem parity a then Hashtbl.remove parity a
      else Hashtbl.add parity a ()
    in
    let add_segment path u v =
      match (Dipath.vertex_index path u, Dipath.vertex_index path v) with
      | Some iu, Some iv ->
        let lo = min iu iv and hi = max iu iv in
        let arcs = Dipath.arc_array path in
        for k = lo to hi - 1 do
          flip arcs.(k)
        done;
        true
      | _ -> false
    in
    let ok = ref true in
    let enter = ref junction in
    for i = 0 to m - 1 do
      let exit_v =
        if i = m - 1 then Some junction
        else Option.map (Digraph.arc_src g) (first_shared i)
      in
      match exit_v with
      | None -> ok := false
      | Some v ->
        if not (add_segment paths.(i) !enter v) then ok := false;
        enter := v
    done;
    if (not !ok) || Hashtbl.length parity = 0 then None
    else Traversal.undirected_cycle ~keep_arc:(Hashtbl.mem parity) g
