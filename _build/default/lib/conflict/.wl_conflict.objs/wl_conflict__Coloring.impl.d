lib/conflict/coloring.ml: Array Format Fun Hashtbl List Ugraph Wl_util
