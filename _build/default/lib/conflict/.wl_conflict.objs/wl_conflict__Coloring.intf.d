lib/conflict/coloring.mli: Format Ugraph
