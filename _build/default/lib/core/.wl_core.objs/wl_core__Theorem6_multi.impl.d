lib/core/theorem6_multi.ml: Bounds Instance List Theorem1 Theorem6 Wl_dag
