open Wl_core
module Engine = Wl_engine.Engine

(* FNV-1a with the offset basis folded into OCaml's 63-bit int range. *)
let shard_of_tenant ~shards tenant =
  let h = ref 0x4bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    tenant;
  (!h land max_int) mod shards

type job = {
  req : Proto.req;
  job_m : Mutex.t;
  job_c : Condition.t;
  mutable reply : Proto.reply option;
}

type shard = {
  sid : int;
  m : Mutex.t;
  nonempty : Condition.t;
  nonfull : Condition.t;
  mutable queue : job list;  (** newest first *)
  mutable queue_len : int;
  mutable stopping : bool;
  sessions : (string, Engine.session) Hashtbl.t;
  n_sessions : int Atomic.t;
  mutable worker : unit Domain.t option;
}

type t = {
  shards : shard array;
  max_queue : int;
  flight_capacity : int;
  threaded : bool;
  drain_m : Mutex.t;
  mutable drained : (string * Engine.session) list option;
}

(* --- per-request execution (runs on the owning shard) ---------------------- *)

let no_session tenant = Error.Invalid_op ("no open session for tenant " ^ tenant)

let with_session sh tenant k =
  match Hashtbl.find_opt sh.sessions tenant with
  | None -> Error (no_session tenant)
  | Some s -> k s

let wire_outcomes (b : Engine.batch) =
  Proto.R_outcomes
    {
      outcomes = Array.map (Result.map Proto.outcome_of_engine) b.Engine.outcomes;
      after = Proto.report_of_solver b.Engine.batch_report;
    }

let handle_one t sh (req : Proto.req) : Proto.reply =
  match req with
  | Proto.Hello v ->
    if v = Proto.version then Ok (Proto.R_hello Proto.version)
    else Error (Error.Unsupported_version v)
  | Proto.Ping -> Ok Proto.R_pong
  | Proto.Shutdown -> Ok Proto.R_bye
  | Proto.Open { tenant; instance } ->
    let s = Engine.create ~flight_capacity:t.flight_capacity instance in
    if not (Hashtbl.mem sh.sessions tenant) then Atomic.incr sh.n_sessions;
    Hashtbl.replace sh.sessions tenant s;
    Ok (Proto.R_open (Proto.report_of_solver (Engine.report s)))
  | Proto.Add_path { tenant; vertices } ->
    with_session sh tenant (fun s ->
        Result.map (fun id -> Proto.R_path id) (Engine.add_path s vertices))
  | Proto.Remove_path { tenant; id } ->
    with_session sh tenant (fun s ->
        Result.map (fun () -> Proto.R_removed id) (Engine.remove_path s id))
  | Proto.Add_arc { tenant; tail; head } ->
    with_session sh tenant (fun s ->
        Result.map (fun a -> Proto.R_arc a) (Engine.add_arc s tail head))
  | Proto.Submit { tenant; ops } ->
    with_session sh tenant (fun s -> Ok (wire_outcomes (Engine.submit s ops)))
  | Proto.Report { tenant } ->
    with_session sh tenant (fun s ->
        Ok (Proto.R_report (Proto.report_of_solver (Engine.report s))))
  | Proto.Pi { tenant } -> with_session sh tenant (fun s -> Ok (Proto.R_pi (Engine.pi s)))
  | Proto.Color_of { tenant; id } ->
    with_session sh tenant (fun s ->
        Result.map (fun c -> Proto.R_color c) (Engine.color_of s id))
  | Proto.Stats { tenant } ->
    with_session sh tenant (fun s -> Ok (Proto.R_stats (Engine.stats s)))
  | Proto.Health { tenant } ->
    with_session sh tenant (fun s ->
        Ok (Proto.R_health (Proto.health_of_engine (Engine.health s))))
  | Proto.Snapshot { tenant } ->
    with_session sh tenant (fun s -> Ok (Proto.R_snapshot (Engine.instance s)))
  | Proto.Evict { tenant } ->
    with_session sh tenant (fun s ->
        ignore s;
        Hashtbl.remove sh.sessions tenant;
        Atomic.decr sh.n_sessions;
        Ok Proto.R_evicted)

(* --- wave batching --------------------------------------------------------- *)

(* A tenant's slice of one submit_many wave: jobs in order, each owed
   [nops] outcomes; at most one trailing Submit job (it consumes the
   batch report, so nothing of that tenant's may run after it). *)
type run = { tenant : string; session : Engine.session; mutable jobs : (job * int) list }

let job_ops (req : Proto.req) =
  match req with
  | Proto.Add_path { vertices; _ } -> Some [ Engine.Add_path vertices ]
  | Proto.Remove_path { id; _ } -> Some [ Engine.Remove_path id ]
  | Proto.Add_arc { tail; head; _ } -> Some [ Engine.Add_arc (tail, head) ]
  | Proto.Submit { ops; _ } -> Some ops
  | _ -> None

let req_tenant (req : Proto.req) =
  match req with
  | Proto.Add_path { tenant; _ }
  | Proto.Remove_path { tenant; _ }
  | Proto.Add_arc { tenant; _ }
  | Proto.Submit { tenant; _ } -> Some tenant
  | _ -> None

let is_submit = function Proto.Submit _ -> true | _ -> false

let finish job reply =
  Mutex.lock job.job_m;
  job.reply <- Some reply;
  Condition.signal job.job_c;
  Mutex.unlock job.job_m

let single_reply (req : Proto.req) (o : (Engine.op_outcome, Error.t) result) : Proto.reply =
  match (req, o) with
  | Proto.Add_path _, Ok (Engine.Path_added id) -> Ok (Proto.R_path id)
  | Proto.Remove_path { id; _ }, Ok (Engine.Path_removed _) -> Ok (Proto.R_removed id)
  | Proto.Add_arc _, Ok (Engine.Arc_added a) -> Ok (Proto.R_arc a)
  | _, Error e -> Error e
  | _, Ok _ -> Error (Error.Invalid_op "batch outcome shape mismatch")

let distribute run (b : Engine.batch) =
  let off = ref 0 in
  List.iter
    (fun (job, nops) ->
      let slice = Array.sub b.Engine.outcomes !off nops in
      off := !off + nops;
      match job.req with
      | Proto.Submit _ ->
        finish job
          (Ok
             (Proto.R_outcomes
                {
                  outcomes = Array.map (Result.map Proto.outcome_of_engine) slice;
                  after = Proto.report_of_solver b.Engine.batch_report;
                }))
      | req -> finish job (single_reply req slice.(0)))
    run.jobs

(* Collect the longest prefix of [wave] in which every tenant contributes
   one submit_many entry; returns the runs (wave order) and the rest. *)
let collect_runs sh wave =
  let runs = ref [] in
  let find tenant = List.find_opt (fun r -> r.tenant = tenant) !runs in
  let closed r =
    match r.jobs with (j, _) :: _ -> is_submit j.req | [] -> false
  in
  let rec go = function
    | [] -> []
    | job :: rest as jobs -> (
      match (job_ops job.req, req_tenant job.req) with
      | Some ops, Some tenant -> (
        match Hashtbl.find_opt sh.sessions tenant with
        | None ->
          finish job (Error (no_session tenant));
          go rest
        | Some session -> (
          match find tenant with
          | Some r when closed r -> jobs (* report barrier: next wave *)
          | Some r ->
            r.jobs <- (job, List.length ops) :: r.jobs;
            go rest
          | None ->
            runs := { tenant; session; jobs = [ (job, List.length ops) ] } :: !runs;
            go rest))
      | _ -> jobs (* query or admin: barrier *))
  in
  let rest = go wave in
  (List.rev_map (fun r -> r.jobs <- List.rev r.jobs; r) !runs, rest)

let mutation_prefix wave =
  match wave with
  | job :: _ -> job_ops job.req <> None && req_tenant job.req <> None
  | [] -> false

let rec process t sh wave =
  match wave with
  | [] -> ()
  | job :: rest when not (mutation_prefix wave) ->
    finish job (handle_one t sh job.req);
    process t sh rest
  | _ ->
    let runs, rest = collect_runs sh wave in
    (match runs with
    | [] -> ()
    | [ run ] ->
      (* one tenant: plain submit, no domain fan-out *)
      let ops = List.concat_map (fun (j, _) -> Option.get (job_ops j.req)) run.jobs in
      distribute run (Engine.submit run.session ops)
    | runs ->
      let entries =
        Array.of_list
          (List.map
             (fun r ->
               (r.session, List.concat_map (fun (j, _) -> Option.get (job_ops j.req)) r.jobs))
             runs)
      in
      let batches = Engine.submit_many entries in
      List.iteri (fun i r -> distribute r batches.(i)) runs);
    process t sh rest

(* --- worker loop ----------------------------------------------------------- *)

let worker_loop t sh =
  let rec loop () =
    Mutex.lock sh.m;
    while sh.queue = [] && not sh.stopping do
      Condition.wait sh.nonempty sh.m
    done;
    let wave = List.rev sh.queue in
    sh.queue <- [];
    sh.queue_len <- 0;
    Condition.broadcast sh.nonfull;
    Mutex.unlock sh.m;
    match wave with
    | [] -> () (* stopping and flushed *)
    | wave ->
      process t sh wave;
      loop ()
  in
  loop ()

(* --- public surface -------------------------------------------------------- *)

let create ?(threaded = true) ?(flight_capacity = 256) ~shards ~max_queue () =
  if shards <= 0 then invalid_arg "Shard.create: shards must be positive";
  if max_queue <= 0 then invalid_arg "Shard.create: max_queue must be positive";
  let mk sid =
    {
      sid;
      m = Mutex.create ();
      nonempty = Condition.create ();
      nonfull = Condition.create ();
      queue = [];
      queue_len = 0;
      stopping = false;
      sessions = Hashtbl.create 64;
      n_sessions = Atomic.make 0;
      worker = None;
    }
  in
  let t =
    {
      shards = Array.init shards mk;
      max_queue;
      flight_capacity;
      threaded;
      drain_m = Mutex.create ();
      drained = None;
    }
  in
  if threaded then
    Array.iter (fun sh -> sh.worker <- Some (Domain.spawn (fun () -> worker_loop t sh))) t.shards;
  t

let shards t = Array.length t.shards

let session_count t =
  Array.fold_left (fun acc sh -> acc + Atomic.get sh.n_sessions) 0 t.shards

let draining_error = Error.Precondition "server draining"

let call_sync t sh req =
  Mutex.lock sh.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sh.m)
    (fun () -> if sh.stopping then Error draining_error else handle_one t sh req)

let call_threaded t sh req =
  let job =
    { req; job_m = Mutex.create (); job_c = Condition.create (); reply = None }
  in
  Mutex.lock sh.m;
  while sh.queue_len >= t.max_queue && not sh.stopping do
    Condition.wait sh.nonfull sh.m
  done;
  if sh.stopping then begin
    Mutex.unlock sh.m;
    Error draining_error
  end
  else begin
    sh.queue <- job :: sh.queue;
    sh.queue_len <- sh.queue_len + 1;
    Condition.signal sh.nonempty;
    Mutex.unlock sh.m;
    Mutex.lock job.job_m;
    while job.reply = None do
      Condition.wait job.job_c job.job_m
    done;
    Mutex.unlock job.job_m;
    Option.get job.reply
  end

let owning_tenant : Proto.req -> string option = function
  | Proto.Hello _ | Proto.Ping | Proto.Shutdown -> None
  | Proto.Open { tenant; _ }
  | Proto.Add_path { tenant; _ }
  | Proto.Remove_path { tenant; _ }
  | Proto.Add_arc { tenant; _ }
  | Proto.Submit { tenant; _ }
  | Proto.Report { tenant }
  | Proto.Pi { tenant }
  | Proto.Color_of { tenant; _ }
  | Proto.Stats { tenant }
  | Proto.Health { tenant }
  | Proto.Snapshot { tenant }
  | Proto.Evict { tenant } -> Some tenant

let call t (req : Proto.req) =
  match owning_tenant req with
  | None -> (
    match req with
    | Proto.Hello v ->
      if v = Proto.version then Ok (Proto.R_hello Proto.version)
      else Error (Error.Unsupported_version v)
    | Proto.Ping -> Ok Proto.R_pong
    | _ -> Ok Proto.R_bye)
  | Some tenant ->
    let sh = t.shards.(shard_of_tenant ~shards:(Array.length t.shards) tenant) in
    if t.threaded then call_threaded t sh req else call_sync t sh req

let drain t =
  Mutex.lock t.drain_m;
  match t.drained with
  | Some listing ->
    Mutex.unlock t.drain_m;
    listing
  | None ->
    Array.iter
      (fun sh ->
        Mutex.lock sh.m;
        sh.stopping <- true;
        Condition.broadcast sh.nonempty;
        Condition.broadcast sh.nonfull;
        Mutex.unlock sh.m)
      t.shards;
    if t.threaded then
      Array.iter
        (fun sh ->
          match sh.worker with
          | Some d ->
            Domain.join d;
            sh.worker <- None
          | None -> ())
        t.shards;
    let listing =
      Array.to_list t.shards
      |> List.concat_map (fun sh ->
             Hashtbl.fold (fun tenant s acc -> (tenant, s) :: acc) sh.sessions [])
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    t.drained <- Some listing;
    Mutex.unlock t.drain_m;
    listing
