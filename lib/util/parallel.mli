(** Minimal fork-join parallelism over OCaml 5 domains.

    The algorithms in this repository are single-threaded, but the sweeps
    that drive them (bench tables, stress validation, parameter scans) are
    embarrassingly parallel; this module spreads such workloads over the
    machine's cores without external dependencies.

    Work is claimed in fixed-size index blocks off a shared atomic counter
    (dynamic chunking), so domains that finish early keep pulling work
    instead of idling behind a slow chunk; each block's results live in a
    buffer private to the computing domain, avoiding both per-element
    boxing and false sharing.  Results are reassembled by index, so output
    is deterministic: identical for every domain count.  The supplied
    function must be safe to run concurrently (our generators and solvers
    are: they share no mutable state once given distinct PRNG seeds).
    Exceptions propagate to the caller.

    Two guards protect small workloads from parallelism overhead (domain
    spawn plus the stop-the-world minor-GC handshake every extra running
    domain joins): the requested domain count is clamped to
    [Domain.recommended_domain_count ()], and the first block is timed on
    the calling domain — when the projected total runtime is under ~2 ms
    the rest of the map runs sequentially too.  Neither guard changes the
    result, only where it is computed.

    When {!Wl_obs.Metrics} is enabled, every map records
    [parallel.maps]/[parallel.items]/[parallel.chunks], the fallback and
    clamp counters ([parallel.seq_fallbacks], [parallel.domains_clamped],
    [parallel.workers_spawned]), a per-domain busy-time histogram
    ([parallel.domain_busy_ns]) and the wall-clock of each section that
    actually went parallel ([parallel.map_wall_ns] — the pair feeds the
    {!Wl_obs.Prof.parallel_rollup} busy/idle utilization figure); with
    {!Wl_obs.Trace} enabled each worker domain emits a [parallel.worker]
    span on its own track. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count], capped at 8. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]; preserves order.  [domains] defaults to
    {!default_domains}; values [<= 1] run sequentially. *)

val init : ?domains:int -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init]. *)

val for_all : ?domains:int -> ('a -> bool) -> 'a array -> bool
(** Parallel conjunction (no early cancellation across domains). *)

val count : ?domains:int -> ('a -> bool) -> 'a array -> int
(** Number of elements satisfying the predicate. *)
