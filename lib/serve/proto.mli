(** Typed [wlrpc/1] messages and their two codecs.

    Every request/reply crossing a {!Wire} frame is one of these values.
    Payloads exist in two interchangeable encodings, sniffed apart by the
    first byte exactly like {!Wl_core.Serial} does for instance files:

    {ul
    {- the {e text} form — line-oriented, [wlrpc 1 VERB ...] header, with
       instance and op-script bodies embedded verbatim in the existing
       Serial v2 / wlops text formats;}
    {- the {e JSON mirror} — one object per frame
       ([{"wlrpc":1,"verb":...}]), for debugging with ordinary tooling
       ([socat | jq]); servers accept both at all times, replying in the
       encoding the request used.}}

    Error replies carry the structured {!Wl_core.Error.t}: the frame holds
    the constructor tag, the {!Wl_core.Error.to_code} wire code {e and}
    the constructor's own payload fields, so an error round-trips the wire
    without losing its line number, index or version — and a client
    exiting with the frame's code behaves exactly like the CLI hitting
    the same error locally. *)

open Wl_core
module Engine = Wl_engine.Engine

val version : int
(** [1] — the only protocol revision; a [hello] for any other revision is
    refused with [Unsupported_version]. *)

val tenant_ok : string -> bool
(** Tenant ids are non-empty, at most 128 bytes, and drawn from
    [A-Za-z0-9_.-] — printable, whitespace-free, safe in both encodings
    and in file names derived from them. *)

(** {1 Messages} *)

type req =
  | Hello of int  (** protocol version the client speaks *)
  | Ping
  | Shutdown  (** ask the server to drain and exit *)
  | Open of { tenant : string; instance : Instance.t }
  | Add_path of { tenant : string; vertices : int list }
  | Remove_path of { tenant : string; id : int }
  | Add_arc of { tenant : string; tail : int; head : int }
  | Submit of { tenant : string; ops : Engine.op list }
  | Report of { tenant : string }
  | Pi of { tenant : string }
  | Color_of of { tenant : string; id : int }
  | Stats of { tenant : string }
  | Health of { tenant : string }
  | Snapshot of { tenant : string }
  | Evict of { tenant : string }
  | Dstats  (** daemon-wide stats: shard-merged rollups + per-tenant rows *)
  | Dhealth  (** daemon-wide health: aggregate flag + unhealthy tenants *)
  | Trace_dump of { last : int }
      (** pull the merged flight rings of every live session as one
          Chrome trace document; [last] caps ops per ring ([0] = all) *)

val verb_of_req : req -> string
(** The wire verb token — the label a client span carries. *)

type report = {
  n_wavelengths : int;
  pi : int;
  optimal : bool;
  method_name : string;  (** {!Wl_core.Solver.method_name} token *)
}
(** The wire projection of {!Wl_core.Solver.report} — the full assignment
    stays server-side; {!req.Snapshot} materializes it as an instance when
    a client wants the complete state. *)

type health = {
  healthy : bool;
  add_p50 : int;
  add_p99 : int;
  remove_p50 : int;
  remove_p99 : int;
  warm_hit_recent : float;
  warm_hit_lifetime : float;
  fallback_streak : int;
}

type outcome = O_path of int | O_removed of int | O_arc of int

type lat_rollup = {
  l_count : int;
  l_p50 : int;
  l_p90 : int;
  l_p99 : int;
  l_p999 : int;
  l_max : int;
  l_ex_ns : int;  (** worst traced sample, ns; meaningless when no exemplar *)
  l_ex_trace : int;  (** its trace id; [0] = no exemplar *)
}
(** Daemon-wide latency figures from merging every shard's histogram via
    [Hdr.merge_into] — true cross-shard quantiles, not an average of
    per-shard quantiles. *)

type tenant_row = {
  r_tenant : string;
  r_shard : int;
  r_paths : int;
  r_pi : int;
  r_ops : int;
  r_add_p50 : int;
  r_add_p99 : int;
  r_healthy : bool;
}

type dstats = {
  d_shards : int;
  d_sessions : int;
  d_add : lat_rollup;
  d_remove : lat_rollup;
  d_tenants : tenant_row list;
}

type dhealth = { dh_healthy : bool; dh_sessions : int; dh_unhealthy : string list }

type resp =
  | R_hello of int
  | R_pong
  | R_bye
  | R_open of report
  | R_path of int
  | R_removed of int
  | R_arc of int
  | R_report of report
  | R_pi of int
  | R_color of int
  | R_stats of Engine.stats
  | R_health of health
  | R_outcomes of { outcomes : (outcome, Error.t) result array; after : report }
  | R_snapshot of Instance.t
  | R_evicted
  | R_dstats of dstats
  | R_dhealth of dhealth
  | R_trace of string
      (** a complete Chrome trace document (multi-line body, like
          [R_snapshot]'s instance) *)

type reply = (resp, Error.t) result

(** {1 Projections} *)

val report_of_solver : Wl_core.Solver.report -> report
val health_of_engine : Engine.health -> health
val outcome_of_engine : Engine.op_outcome -> outcome

(** {1 Codecs}

    Encoders are total on well-formed values (invalid tenant ids raise
    [Invalid_argument] — they are unrepresentable on the wire); decoders
    are total on arbitrary bytes and never raise.

    [ctx] is the optional distributed trace context: the text form
    carries it as a [ctx=TRACE:SPAN] token between version and verb, the
    JSON mirror as a ["ctx"] string field.  [Ctx.none] (the default)
    encodes nothing, so untraced frames are byte-identical to the
    pre-context protocol and old peers interoperate unchanged.  On
    decode, an absent field yields [Ctx.none]; a malformed or duplicated
    field is a protocol error, never an exception. *)

val encode_request : ?json:bool -> ?ctx:Wl_obs.Ctx.t -> req -> string
val decode_request : string -> (req, Error.t) result

val decode_request_ctx : string -> (req * Wl_obs.Ctx.t, Error.t) result
(** Like {!decode_request}, also yielding the propagated context
    ([Ctx.none] when the frame carries no ctx field). *)

val encode_reply : ?json:bool -> ?ctx:Wl_obs.Ctx.t -> reply -> string
val decode_reply : string -> (reply, Error.t) result

val decode_reply_ctx : string -> (reply * Wl_obs.Ctx.t, Error.t) result
