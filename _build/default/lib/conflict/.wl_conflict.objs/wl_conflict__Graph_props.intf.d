lib/conflict/graph_props.mli: Ugraph
