(** Distributed trace context.

    A context is a (trace id, span id, parent span id) triple of 62-bit
    integers.  Trace id [0] is reserved for "no context" ({!none}), so a
    context travels as plain ints through hot paths that must not
    allocate — the flight recorder and HDR exemplar latches store the
    trace id directly as an [int] field.

    Ids come from a deterministic splitmix generator seeded by the
    caller ({!generator}), matching the repo-wide seeded-RNG discipline:
    the same seed yields the same trace ids, which is what lets the
    golden Chrome-trace fixture pin a full distributed trace
    byte-for-byte.

    The {e ambient} context is a per-domain cell ({!set} /
    {!current}): the serve layer installs the propagated context before
    running engine work, and the engine reads just the trace id with the
    zero-allocation {!current_trace} from its hot paths. *)

type t = {
  trace_id : int;  (** 62-bit, nonzero; [0] means "no context" *)
  span_id : int;  (** 62-bit, nonzero when the context is real *)
  parent_id : int;  (** span id of the parent, [0] at the root *)
}

val none : t
(** The absent context: all fields [0]. *)

val is_none : t -> bool

(** {1 Deterministic id generation} *)

type gen
(** A stateful splitmix id stream.  Not thread-safe; give each client
    its own. *)

val generator : int -> gen
(** [generator seed] — equal seeds yield equal id streams. *)

val root : gen -> t
(** A fresh root context: new trace id, new span id, parent [0]. *)

val child : gen -> t -> t
(** A child context under [parent]: same trace id, fresh span id,
    parent set to [parent.span_id].  [child g none] is a fresh root. *)

(** {1 Ambient (per-domain) context} *)

val set : t -> unit
(** Install [ctx] as this domain's ambient context.  Allocation-free
    after the domain's first call. *)

val current : unit -> t
(** This domain's ambient context; {!none} if never set. *)

val current_trace : unit -> int
(** [ (current ()).trace_id ] without constructing a [t] — safe to call
    from zero-allocation hot paths. *)

val clear : unit -> unit
(** [set none]. *)

(** {1 Wire form} *)

val to_string : t -> string
(** ["TRACE:SPAN"] in lowercase hex (parent id is not carried: the
    receiver becomes the child).  Raises [Invalid_argument] on
    {!none} — absent contexts are simply not encoded. *)

val of_string : string -> t option
(** Parse ["TRACE:SPAN"].  Strict: both fields nonempty lowercase or
    uppercase hex of at most 16 digits, trace id nonzero.  [None] on
    anything else — never raises. *)

val hex : int -> string
(** Lowercase hex rendering of a bare id, as used in exemplar labels. *)
