(** Section 4 structure theory for UPP-DAGs.

    Property 3 (Helly): in a UPP-DAG, two conflicting dipaths intersect in a
    single interval, and pairwise-conflicting dipaths share a common arc;
    hence the load [pi] equals the clique number of the conflict graph.
    Lemma 4 (crossing) and Corollary 5 (no [K_{2,3}]) constrain the conflict
    graph further.  These checkers make each statement executable so the
    test suite can drive them across generated UPP-DAGs — and exhibit the
    failures on non-UPP instances. *)

val pairwise_intersections_are_intervals : Instance.t -> bool
(** Every conflicting pair of family dipaths shares a single contiguous
    interval (always true when the DAG is UPP). *)

val helly_holds : Instance.t -> bool
(** No pairwise-conflicting triple without a common arc. *)

val clique_number_equals_load : Instance.t -> bool
(** Property 3's consequence: clique number of the conflict graph = [pi].
    (Computes the exact clique number; intended for test sizes.) *)

val no_k23 : Instance.t -> bool
(** Corollary 5. *)

val no_k5_minus_two_edges : Instance.t -> bool
(** The paper's remark after Corollary 5. *)

val crossing_lemma_holds : Instance.t -> bool
(** Lemma 4 on every quadruple [(P1, P2, Q1, Q2)] with [P1, P2] disjoint,
    [Q1, Q2] disjoint and all four cross-pairs conflicting: if [Q1] meets
    [P1] before [Q2] (in [P1]'s direction), then [Q2] meets [P2] before
    [Q1].  O(n^4) over the family; test-scale only. *)
