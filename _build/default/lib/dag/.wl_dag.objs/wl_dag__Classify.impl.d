lib/dag/classify.ml: Dag Digraph Format Internal_cycle List Upp Wl_digraph
