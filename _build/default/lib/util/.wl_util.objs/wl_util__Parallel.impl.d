lib/util/parallel.ml: Array Domain Fun List
