(* CI-scale runs of the validation sweeps (bin/stress runs them at 30k+
   seeds; here a few hundred each keep `dune runtest` snappy while still
   exercising the full generator/algorithm/checker pipeline). *)

open Helpers
module Sweeps = Wl_validate.Sweeps

let sweep_case name case =
  Alcotest.test_case name `Slow (fun () ->
      match Sweeps.run ~seeds:300 case with
      | [] -> ()
      | (seed, reason) :: _ as failures ->
        Alcotest.failf "%d failures; first: seed %d, %s" (List.length failures)
          seed reason)

let test_failure_reporting () =
  (* A deliberately failing case reports every seed with its reason. *)
  let broken seed = if seed mod 2 = 0 then Some "even seed" else None in
  let failures = Sweeps.run ~seeds:10 broken in
  check_int "five failures" 5 (List.length failures);
  check "reasons carried" true
    (List.for_all (fun (_, r) -> r = "even seed") failures);
  (* Exceptions are captured as failures, not crashes. *)
  let raising _ = failwith "boom" in
  check_int "exceptions counted" 3 (List.length (Sweeps.run ~seeds:3 raising))

let suite =
  [
    ( "sweeps",
      Alcotest.test_case "failure reporting" `Quick test_failure_reporting
      :: List.map (fun (name, case) -> sweep_case name case) Sweeps.all );
  ]
