lib/conflict/dimacs.mli: Ugraph
