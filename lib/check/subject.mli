(** The unit of fuzzing: an instance plus an optional engine op script.

    Every oracle checks a subject; the shrinker mutates subjects.  A
    subject with an empty op script is just an instance (the Theorem 1 /
    Theorem 6 / serializer oracles); the engine oracle carries the op
    sequence it replays against a session.

    A subject round-trips through {!parts} — the raw
    (vertex count, arcs, path vertex sequences, ops) quadruple — which is
    what delta debugging edits: {!of_parts} re-validates everything and
    returns [None] when a mutation broke the instance (directed cycle,
    dangling path), so the shrinker can propose arbitrary deletions and
    keep only the well-formed ones. *)

open Wl_core
module Engine = Wl_engine.Engine

type t = private {
  inst : Instance.t;
  ops : Engine.op list;  (** [[]] for instance-only subjects *)
}

val make : ?ops:Engine.op list -> Instance.t -> t

(** {1 Raw parts, the shrinker's representation} *)

type parts = {
  n_vertices : int;
  arcs : (int * int) list;  (** in arc-id order *)
  paths : int list list;  (** vertex sequences, in family order *)
  ops : Engine.op list;
}

val to_parts : t -> parts

val of_parts : parts -> t option
(** Re-validate: [None] when the arcs are not a simple DAG or a path is
    not a dipath of the rebuilt graph.  Vertex labels are dropped — shrunk
    reproducers are anonymous by design. *)

(** {1 Sizes} *)

val n_vertices : t -> int
val n_paths : t -> int
val n_ops : t -> int

(** {1 Serialization}

    The instance renders through {!Wl_core.Serial} (text format, version
    2) and the ops through {!Wl_engine.Script}; a reproducer is one [.wl]
    file plus, when the op script is non-empty, a sibling [.wlops]. *)

val wl_string : t -> string
val ops_string : t -> string option

val equal : t -> t -> bool
(** Structural equality of the rendered forms (labels ignored). *)

val write : prefix:string -> t -> string list
(** Write [prefix.wl] (and [prefix.wlops] when ops are present); returns
    the paths written. *)

val read : wl:string -> (t, Error.t) result
(** Read a [.wl] file; a sibling op script (same path with the [.wl]
    suffix replaced by [.wlops]) is loaded when present. *)
