wl 2
dag 2
arc 0 1
path 0 1
path 0 1
