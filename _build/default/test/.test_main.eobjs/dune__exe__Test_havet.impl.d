test/test_havet.ml: Alcotest Array Assignment Bounds Conflict_of Fun Helpers Instance List Load Printf Replication Theorem6 Wl_conflict Wl_core Wl_dag Wl_netgen
