(* Tests for request routing. *)

open Helpers
open Wl_core
open Wl_digraph
module Dag = Wl_dag.Dag
module Prng = Wl_util.Prng
module Generators = Wl_netgen.Generators

let test_route_shortest_is_shortest () =
  (* 0 -> 1 -> 4 (2 hops) vs 0 -> 2 -> 3 -> 4 (3 hops).  Regression for the
     old delegation to Dag.some_dipath, whose contract is "any dipath": the
     hop count is pinned. *)
  let g = Digraph.of_arcs 5 [ (0, 1); (1, 4); (0, 2); (2, 3); (3, 4) ] in
  let dag = Dag.of_digraph_exn g in
  match Routing.route_shortest dag [ (0, 4) ] with
  | Ok [ p ] -> check_int "two hops" 2 (Dipath.n_arcs p)
  | _ -> Alcotest.fail "routing failed"

let test_shortest_is_lex_smallest () =
  (* Two 2-hop routes 0->3->4 and 0->1->4; arc insertion order puts 3 before
     1 in the adjacency list, but shortest_dipath must still pick the
     lexicographically smaller vertex sequence 0,1,4. *)
  let g = Digraph.of_arcs 5 [ (0, 3); (3, 4); (0, 1); (1, 4) ] in
  let dag = Dag.of_digraph_exn g in
  match Routing.shortest_dipath dag 0 4 with
  | Some p -> check "lex smallest" true (Dipath.vertices p = [ 0; 1; 4 ])
  | None -> Alcotest.fail "routable"

let astring_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_unroutable_reported () =
  let g = Digraph.of_arcs 3 [ (0, 1) ] in
  let dag = Dag.of_digraph_exn g in
  (match Routing.route_shortest dag [ (0, 1); (1, 2) ] with
  | Error (Error.Invalid_path msg as e) ->
    check "names the position" true
      (astring_contains msg "position 1" && astring_contains msg "(1, 2)");
    check_int "Invalid_path exit code" 67 (Error.exit_code e)
  | Error _ -> Alcotest.fail "wrong error constructor"
  | Ok _ -> Alcotest.fail "should be unroutable");
  match Routing.instance_of dag Routing.route_shortest [ (0, 1); (1, 0) ] with
  | Error (Error.Invalid_path _) -> ()
  | Error _ -> Alcotest.fail "wrong error constructor"
  | Ok _ -> Alcotest.fail "should fail end to end"

let test_min_load_spreads () =
  (* Two parallel two-hop routes; four identical requests must split 2/2,
     keeping the load at 2 instead of 4. *)
  let g = Digraph.of_arcs 6 [ (0, 1); (1, 5); (0, 2); (2, 5); (0, 3); (3, 5) ] in
  let dag = Dag.of_digraph_exn g in
  let requests = List.init 6 (fun _ -> (0, 5)) in
  match Routing.instance_of dag Routing.route_min_load requests with
  | Error e -> Alcotest.failf "routing failed: %s" (Error.to_string e)
  | Ok inst -> check_int "balanced load" 2 (Load.pi inst)

let shortest_really_shortest =
  qtest "route_shortest matches BFS distance" seed_gen ~count:30 (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.gnp_dag rng 14 0.25 in
      let g = Dag.graph dag in
      let pairs = Wl_dag.Upp.routable_pairs dag in
      match Routing.route_shortest dag pairs with
      | Error _ -> false
      | Ok paths ->
        List.for_all2
          (fun (x, _) p ->
            let dist = Traversal.bfs_dist g x in
            Dipath.n_arcs p = dist.(Dipath.dst p))
          pairs paths)

let min_load_routes_everything =
  qtest "min-load routing is total and deterministic" seed_gen ~count:25
    (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.layered rng ~layers:4 ~width:4 ~p:0.5 in
      let requests = Routing.random_requests rng dag 20 in
      match
        ( Routing.instance_of dag Routing.route_min_load requests,
          Routing.instance_of dag Routing.route_min_load requests )
      with
      | Ok m1, Ok m2 ->
        Instance.n_paths m1 = List.length requests
        && List.equal Dipath.equal (Instance.paths_list m1) (Instance.paths_list m2)
      | _ -> false)

(* On a hotspot topology the load-aware router must beat blind shortest
   paths: many requests whose unique shortest route shares one arc, while a
   one-hop-longer detour exists. *)
let test_min_load_beats_shortest_on_hotspot () =
  (* 0 -> 1 -> 5 (short) and 0 -> 2 -> 3 -> 5 / 0 -> 4 -> ... detours. *)
  let g =
    Digraph.of_arcs 7
      [ (0, 1); (1, 6); (0, 2); (2, 3); (3, 6); (0, 4); (4, 5); (5, 6) ]
  in
  let dag = Dag.of_digraph_exn g in
  let requests = List.init 6 (fun _ -> (0, 6)) in
  match
    ( Routing.instance_of dag Routing.route_shortest requests,
      Routing.instance_of dag Routing.route_min_load requests )
  with
  | Ok s, Ok m ->
    check_int "shortest hotspots" 6 (Load.pi s);
    check_int "min-load spreads to 2" 2 (Load.pi m)
  | _ -> Alcotest.fail "routing failed"

(* --- the routing stage: bottleneck seed, k-shortest, select ------------- *)

let path_bottleneck load p =
  List.fold_left (fun acc a -> max acc load.(a)) 0 (Dipath.arcs p)

(* bottleneck_path against brute force: on DAGs small enough to enumerate
   every dipath, its bottleneck must equal the true minimum over all
   dipaths (the hop component is a tie-break heuristic, not a guarantee —
   one label per vertex cannot certify hop-minimality). *)
let bottleneck_matches_brute_force =
  qtest "bottleneck_path equals brute-force min-bottleneck" seed_gen ~count:60
    (fun seed ->
      let rng = Prng.create seed in
      let n = 4 + Prng.int rng 5 in
      let dag = Generators.gnp_dag rng n 0.4 in
      let g = Dag.graph dag in
      let m = Digraph.n_arcs g in
      let load = Array.init (max 1 m) (fun _ -> Prng.int rng 5) in
      List.for_all
        (fun (x, y) ->
          let all = Dag.all_dipaths_between ~limit:10_000 dag x y in
          let best =
            List.fold_left
              (fun acc p ->
                let b = path_bottleneck load p in
                match acc with Some b' when b' <= b -> acc | _ -> Some b)
              None all
          in
          match (Routing.bottleneck_path dag load x y, best) with
          | Some p, Some b -> path_bottleneck load p = b
          | None, None -> true
          | _ -> false)
        (Wl_dag.Upp.routable_pairs dag))

(* k-shortest: duplicate-free, sorted by (hops, lex vertex sequence), and
   complete once k reaches the number of dipaths. *)
let k_shortest_enumeration =
  qtest "k_shortest is sorted, duplicate-free, complete" seed_gen ~count:60
    (fun seed ->
      let rng = Prng.create seed in
      let n = 4 + Prng.int rng 5 in
      let dag = Generators.gnp_dag rng n 0.45 in
      List.for_all
        (fun (x, y) ->
          let all = Dag.all_dipaths_between ~limit:10_000 dag x y in
          let total = List.length all in
          let ks = Routing.k_shortest ~k:(total + 3) dag x y in
          let sorted =
            let rec go = function
              | a :: (b :: _ as rest) ->
                Routing.compare_route a b < 0 && go rest
              | _ -> true
            in
            go ks
          in
          let complete =
            List.length ks = total
            && List.for_all
                 (fun p -> List.exists (Dipath.equal p) ks)
                 all
          in
          let prefix =
            (* a smaller k returns exactly the first few of the full list *)
            let k = 1 + Prng.int rng (total + 1) in
            let small = Routing.k_shortest ~k dag x y in
            List.length small = min k total
            && List.for_all2 Dipath.equal small
                 (List.filteri (fun i _ -> i < min k total) ks)
          in
          sorted && complete && prefix)
        (Wl_dag.Upp.routable_pairs dag))

(* select: the local search never worsens the greedy seed, the
   packing-number-style lower bound holds, and the reported max_load is the
   true load of the chosen family. *)
let select_invariants =
  qtest "select: lb <= max_load <= seed_load = pi-consistent" seed_gen
    ~count:40 (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.gnp_dag rng 12 0.3 in
      let requests = Routing.random_requests rng dag 16 in
      if requests = [] then true
      else
        match Routing.select ~k:4 dag requests with
        | Error _ -> false
        | Ok sel ->
          let inst = Routing.instance_of_selection dag sel in
          sel.Routing.max_load <= sel.Routing.seed_load
          && sel.Routing.lower_bound <= sel.Routing.max_load
          && Load.pi inst = sel.Routing.max_load
          && sel.Routing.lower_bound <= (Solver.solve inst).Solver.n_wavelengths)

let test_select_beats_seed_on_hotspot () =
  (* Three disjoint 0->6 routes; six identical requests.  The greedy seed
     already balances (bottleneck Dijkstra), so instead force a detour
     decision: requests between interior vertices that the seed routes
     through the shared fast arc, and check select reaches the optimum 2. *)
  let g =
    Digraph.of_arcs 7
      [ (0, 1); (1, 6); (0, 2); (2, 3); (3, 6); (0, 4); (4, 5); (5, 6) ]
  in
  let dag = Dag.of_digraph_exn g in
  let requests = List.init 6 (fun _ -> (0, 6)) in
  match Routing.select ~k:4 dag requests with
  | Error e -> Alcotest.failf "select failed: %s" (Error.to_string e)
  | Ok sel ->
    check_int "optimal spread" 2 sel.Routing.max_load;
    check_int "matches lower bound" sel.Routing.lower_bound
      sel.Routing.max_load;
    check "never worse than seed" true
      (sel.Routing.max_load <= sel.Routing.seed_load)

let test_select_bad_index () =
  let g = Digraph.of_arcs 3 [ (0, 1); (1, 2) ] in
  let dag = Dag.of_digraph_exn g in
  match Routing.select dag [ (0, 7) ] with
  | Error (Error.Bad_index { index = 7; _ } as e) ->
    check_int "Bad_index exit code" 68 (Error.exit_code e)
  | _ -> Alcotest.fail "expected Bad_index"

let test_lower_bound_forced_arc () =
  (* A bridge arc every request must cross: volume bound is 1 but the
     forced-arc bound sees all three requests. *)
  let g = Digraph.of_arcs 6 [ (0, 2); (1, 2); (2, 3); (3, 4); (3, 5) ] in
  let dag = Dag.of_digraph_exn g in
  check_int "forced bridge" 3
    (Routing.lower_bound dag [ (0, 4); (1, 5); (0, 5) ])

let test_requests_roundtrip () =
  let reqs = [ (0, 5); (2, 7); (2, 7) ] in
  (match Routing.requests_of_string (Routing.requests_to_string reqs) with
  | Ok r -> check "roundtrip" true (r = reqs)
  | Error _ -> Alcotest.fail "roundtrip failed");
  (match Routing.requests_of_string "req 1 2 # tail comment\n\nreq 3 4\n" with
  | Ok r -> check "comments and blanks" true (r = [ (1, 2); (3, 4) ])
  | Error _ -> Alcotest.fail "lenient parse failed");
  (match Routing.requests_of_string "wlreq 1\nreq 0 nope\n" with
  | Error (Error.Parse { line = 2; _ }) -> ()
  | _ -> Alcotest.fail "expected Parse at line 2");
  match Routing.requests_of_string "wlreq 9\n" with
  | Error (Error.Unsupported_version 9) -> ()
  | _ -> Alcotest.fail "expected Unsupported_version"

let test_unique_on_upp () =
  let rng = Prng.create 3 in
  let dag = Generators.gnp_upp rng 12 0.3 in
  let pairs = Routing.all_to_all dag in
  match Routing.route_unique dag pairs with
  | Error e -> Alcotest.failf "routing failed: %s" (Error.to_string e)
  | Ok paths ->
    check_int "one per pair" (List.length pairs) (List.length paths);
    List.iter2
      (fun (x, y) p ->
        check "endpoints" true (Dipath.src p = x && Dipath.dst p = y))
      pairs paths

let test_multicast () =
  let g = Digraph.of_arcs 5 [ (0, 1); (0, 2); (1, 3) ] in
  let dag = Dag.of_digraph_exn g in
  check "multicast requests" true
    (List.sort compare (Routing.multicast dag 0) = [ (0, 1); (0, 2); (0, 3) ]);
  check "multicast from leaf" true (Routing.multicast dag 4 = [])

(* Tree-routed multicast achieves w = pi on ANY DAG, because its routes
   live on a rooted tree (Theorem 1 applies). *)
let multicast_tree_equality =
  qtest "tree-routed multicast: w = pi on any DAG" seed_gen ~count:40
    (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.gnp_dag rng 14 0.3 in
      let root = Prng.int rng 14 in
      let paths = Routing.route_multicast_tree dag root in
      match paths with
      | [] -> true
      | _ ->
        let inst = Instance.make dag paths in
        (* Routes form an out-tree: every vertex reached by exactly one
           route suffix, so the union of arcs is a tree and Theorem 1
           colors optimally. *)
        let a = Theorem1.color inst in
        Assignment.is_valid inst a
        && Assignment.n_wavelengths (Assignment.normalize a) = Load.pi inst)

let test_multicast_tree_counts () =
  let g = Digraph.of_arcs 6 [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ] in
  let dag = Dag.of_digraph_exn g in
  let paths = Routing.route_multicast_tree dag 0 in
  check_int "one route per reachable vertex" 4 (List.length paths);
  List.iter (fun p -> check_int "starts at root" 0 (Dipath.src p)) paths;
  check "leaf multicast empty" true (Routing.route_multicast_tree dag 4 = []);
  (* All routes use only tree arcs: at most one in-arc used per vertex. *)
  let used_in = Hashtbl.create 8 in
  List.iter
    (fun p ->
      List.iter
        (fun a ->
          let dst = Digraph.arc_dst g a in
          match Hashtbl.find_opt used_in dst with
          | None -> Hashtbl.add used_in dst a
          | Some a' -> check "single in-arc per vertex" true (a = a'))
        (Dipath.arcs p))
    paths

let test_random_requests_routable () =
  let rng = Prng.create 8 in
  let dag = Generators.gnp_dag rng 12 0.3 in
  let reqs = Routing.random_requests rng dag 25 in
  check_int "count" 25 (List.length reqs);
  match Routing.route_shortest dag reqs with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "random request unroutable: %s" (Error.to_string e)

(* Multicast instances satisfy w = pi on any digraph (the paper cites
   Beauquier-Hell-Perennes); with our machinery this follows from Theorem 1
   when there is no internal cycle, and we verify it exactly on small
   multicast instances in general. *)
let multicast_w_equals_pi =
  qtest "multicast families have w = pi (small, exact)" seed_gen ~count:20
    (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.gnp_dag rng 9 0.3 in
      let root = Prng.int rng 9 in
      let reqs = Routing.multicast dag root in
      if List.length reqs = 0 || List.length reqs > 14 then true
      else
        match Routing.instance_of dag Routing.route_shortest reqs with
        | Error _ -> false
        | Ok inst -> Bounds.chromatic_exact inst = Load.pi inst)

let suite =
  [
    ( "routing",
      [
        Alcotest.test_case "shortest is shortest" `Quick test_route_shortest_is_shortest;
        Alcotest.test_case "shortest is lex smallest" `Quick
          test_shortest_is_lex_smallest;
        Alcotest.test_case "unroutable reported" `Quick test_unroutable_reported;
        Alcotest.test_case "min-load spreads" `Quick test_min_load_spreads;
        shortest_really_shortest;
        min_load_routes_everything;
        Alcotest.test_case "min-load beats shortest on hotspot" `Quick
          test_min_load_beats_shortest_on_hotspot;
        bottleneck_matches_brute_force;
        k_shortest_enumeration;
        select_invariants;
        Alcotest.test_case "select reaches hotspot optimum" `Quick
          test_select_beats_seed_on_hotspot;
        Alcotest.test_case "select rejects bad vertex" `Quick
          test_select_bad_index;
        Alcotest.test_case "lower bound sees forced arc" `Quick
          test_lower_bound_forced_arc;
        Alcotest.test_case "request file roundtrip" `Quick
          test_requests_roundtrip;
        Alcotest.test_case "unique routing on UPP" `Quick test_unique_on_upp;
        Alcotest.test_case "multicast" `Quick test_multicast;
        multicast_tree_equality;
        Alcotest.test_case "multicast tree routing" `Quick test_multicast_tree_counts;
        Alcotest.test_case "random requests routable" `Quick
          test_random_requests_routable;
        multicast_w_equals_pi;
      ] );
  ]
