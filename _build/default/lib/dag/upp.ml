open Wl_digraph
module Saturating = Wl_util.Saturating

type violation = {
  from_v : Digraph.vertex;
  to_v : Digraph.vertex;
  path1 : Dipath.t;
  path2 : Dipath.t;
}

let two = Saturating.of_int 2

let find_violating_pair d =
  let n = Dag.n_vertices d in
  let rec scan v =
    if v >= n then None
    else
      let counts = Dag.count_dipaths_from d v in
      let rec scan_dst w =
        if w >= n then scan (v + 1)
        else if Saturating.compare counts.(w) two >= 0 then Some (v, w)
        else scan_dst (w + 1)
      in
      scan_dst 0
  in
  scan 0

let is_upp d = find_violating_pair d = None

let find_violation d =
  match find_violating_pair d with
  | None -> None
  | Some (v, w) ->
    (match Dag.all_dipaths_between ~limit:2 d v w with
    | p1 :: p2 :: _ -> Some { from_v = v; to_v = w; path1 = p1; path2 = p2 }
    | _ -> invalid_arg "Upp.find_violation: count/enumeration mismatch")

let unique_dipath d src dst = Dag.some_dipath d src dst

let routable_pairs d =
  let g = Dag.graph d in
  let n = Dag.n_vertices d in
  let reach = Traversal.reachability_matrix g in
  let out = ref [] in
  for x = n - 1 downto 0 do
    for y = n - 1 downto 0 do
      if x <> y && Wl_util.Bitset.mem reach.(x) y then out := (x, y) :: !out
    done
  done;
  !out
