test/test_load.ml: Alcotest Array Assignment Bounds Conflict_of Digraph Dipath Helpers Instance List Load Wl_conflict Wl_core Wl_dag Wl_digraph Wl_netgen Wl_util
