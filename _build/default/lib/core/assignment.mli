(** Wavelength assignments: one color per family member.

    An assignment is valid when any two dipaths sharing an arc carry
    different colors — the WDM constraint of the paper.  [w(G, P)] is the
    minimum number of colors over valid assignments. *)

type t = int array
(** [t.(i)] is the wavelength of family member [i] (colors from 0). *)

val is_valid : Instance.t -> t -> bool

val first_conflict : Instance.t -> t -> (int * int * Wl_digraph.Digraph.arc) option
(** A monochromatic conflicting pair and a shared arc, if the assignment is
    invalid; [None] when valid.  Also reports indices out of range or
    negative colors as [Invalid_argument]. *)

val n_wavelengths : t -> int
(** [1 + max] (0 for the empty family) — meaningful after {!normalize}. *)

val normalize : t -> t
(** Renames wavelengths onto [0 .. k-1] preserving classes. *)

val of_conflict_coloring : Wl_conflict.Coloring.t -> t
(** Conflict-graph colorings index vertices exactly like family members. *)

val pp : Format.formatter -> t -> unit
