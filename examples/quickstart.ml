(* Quickstart: build a DAG, route some requests, and assign wavelengths.

   Walks through the whole public API surface on a ten-line example:
   constructing a digraph, validating it as a DAG, checking the paper's
   structural hypotheses, and solving the wavelength-assignment problem
   with the dispatching solver.

   Everything is reached through the [Wl] umbrella facade (the
   [wavelength] library) — one [open] instead of one per sub-library.

   Run with: dune exec examples/quickstart.exe *)

open Wl

let () =
  (* A little optical network: two parallel east-west routes sharing their
     first and last hops. *)
  let g = Digraph.create () in
  let v name = Digraph.add_vertex ~label:name g in
  let paris = v "paris" in
  let lyon = v "lyon" in
  let geneva = v "geneva" in
  let torino = v "torino" in
  let milano = v "milano" in
  let arc a b = ignore (Digraph.add_arc g a b) in
  arc paris lyon;
  arc lyon geneva;
  arc lyon torino;
  arc geneva milano;
  arc torino milano;
  let dag = Dag.of_digraph_exn g in

  (* The paper's hypotheses are easy to check programmatically. *)
  let cls = Classify.classify dag in
  Format.printf "network: %a@." Classify.pp cls;

  (* Route requests along unique dipaths (this DAG is UPP), then solve. *)
  let requests = [ (paris, milano); (paris, milano); (lyon, milano); (geneva, milano) ] in
  match Routing.instance_of dag Routing.route_min_load requests with
  | Error e -> Format.printf "routing failed: %s@." (Error.to_string e)
  | Ok inst ->
    let report = Solver.solve inst in
    Format.printf "%a@." (Solver.pp_report ~stats:false) report;
    Format.printf "assignment:@.";
    Array.iteri
      (fun i p ->
        Format.printf "  wavelength %d: %a@."
          report.Solver.assignment.(i)
          (Dipath.pp g) p)
      (Instance.paths inst);
    (* Theorem 1 applies (no internal cycle): the wavelength count equals
       the load, which is optimal. *)
    assert (report.Solver.n_wavelengths = Load.pi inst);
    Format.printf "w = pi = %d, as Theorem 1 promises.@." (Load.pi inst);

    (* The same instance can seed a long-lived session that keeps the
       optimum warm while the demand set changes. *)
    let s = Engine.create inst in
    ignore (Engine.report s);
    (match Engine.add_path s [ paris; lyon; torino; milano ] with
    | Error e -> Format.printf "add failed: %s@." (Error.to_string e)
    | Ok _ ->
      let r = Engine.report s in
      Format.printf "after one more lightpath: w = %d (warm hit rate %.2f)@."
        r.Solver.n_wavelengths
        (Engine.hit_rate (Engine.stats s)))
