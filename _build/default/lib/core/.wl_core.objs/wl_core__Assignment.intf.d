lib/core/assignment.mli: Format Instance Wl_conflict Wl_digraph
