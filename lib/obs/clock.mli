(** Wall-clock time for spans and latency metrics.

    A single time source keeps trace timestamps and metric latencies
    comparable.  Resolution is whatever [Unix.gettimeofday] gives (µs on
    every platform we run on); that is plenty for spans, which wrap whole
    algorithm phases, not individual loop iterations. *)

val now_ns : unit -> int
(** Nanoseconds since an arbitrary process-local origin.  Monotone in
    practice (we never set the system clock mid-run); subtraction of two
    readings is the only supported use. *)

val now_us : unit -> float
(** Same instant as {!now_ns}, in microseconds. *)
