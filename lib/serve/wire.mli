(** Length-prefixed framing for the [wlrpc/1] wire protocol.

    A frame is a 4-byte big-endian payload length followed by the payload
    bytes.  The length is bounded by {!max_frame} so a hostile or corrupt
    prefix can never make a reader allocate unboundedly: readers check the
    prefix {e before} allocating the payload buffer.

    Two reader surfaces share one decoder:

    {ul
    {- {!read} / {!write} for blocking file descriptors (the daemon and
       the remote client);}
    {- {!unframe} for in-memory byte strings (the in-process loopback
       transport and the frame-level fuzz oracle).}}

    Every malformed input — truncated prefix, truncated payload, oversized
    or zero length — is reported as [Error (Parse _)] (or [Io] for real
    socket failures); the decoder never raises and never blocks past the
    bytes it was given. *)

open Wl_core

val max_frame : int
(** Hard payload-size ceiling (16 MiB).  Frames beyond it are refused on
    both sides: writers raise [Invalid_argument], readers report a
    protocol error without allocating the payload. *)

(** {1 In-memory codec} *)

val frame : string -> string
(** Prefix a payload with its length.
    @raise Invalid_argument when the payload is empty or exceeds
    {!max_frame} — both are unrepresentable on the wire by design. *)

val unframe : string -> int -> (string * int, Error.t) result
(** [unframe buf off] decodes one frame starting at byte [off]: the
    payload and the offset just past it.  [Error (Parse _)] on a
    truncated prefix, a zero or oversized length, or a payload running
    past the end of [buf].  Total: never raises, for any input. *)

val unframe_all : string -> (string list, Error.t) result
(** Decode a whole buffer as consecutive frames. *)

(** {1 File-descriptor transport} *)

val write : Unix.file_descr -> string -> (unit, Error.t) result
(** Write one frame, handling short writes.  [Error (Io _)] on a closed
    or broken descriptor; raises [Invalid_argument] like {!frame} on an
    unrepresentable payload. *)

val read : Unix.file_descr -> (string option, Error.t) result
(** Read one frame.  [Ok None] on a clean EOF at a frame boundary;
    [Error (Parse _)] on EOF mid-frame or a bad length prefix;
    [Error (Io _)] on a socket error. *)
