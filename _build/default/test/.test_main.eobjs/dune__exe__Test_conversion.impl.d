test/test_conversion.ml: Alcotest Conversion Helpers Instance List Load Solver Wl_core Wl_digraph Wl_netgen Wl_util
