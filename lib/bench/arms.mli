(** The benchmark arms [wl bench] runs and gates on.

    Workloads mirror [bench/main.exe]'s perf engine at sizes tuned so a
    full gated run takes seconds.  The size is embedded in each arm's
    name, so the [--quick] suite produces disjoint bench ids from the
    full one and the regression gate never compares across sizes. *)

type arm = {
  name : string;  (** bench id, e.g. ["thm1/color/n=400"] *)
  params : (string * int) list;  (** recorded in the trajectory point *)
  run : unit -> unit;  (** one operation — the timed unit *)
  baseline : (unit -> unit) option;  (** optional reference arm *)
  extras : unit -> (string * float) list;
      (** derived figures read after the runs (e.g. the engine session's
          warm-hit rate) *)
}

val suite : ?quick:bool -> unit -> arm list
(** The standard arms: Theorem 1 coloring, dense DSATUR (sequential and
    component-parallel with the sequential run as the baseline arm),
    conflict-graph construction, load computation, a warm engine
    add/query/remove cycle through the prebuilt-dipath hot entries, and
    the full routing stage ([route/n=...]: {!Wl_core.Routing.select} over
    a fixed uniform request set, with the seed/final/lower-bound loads as
    extras).  [quick] (default false) switches to smaller instances under
    different bench names — for smoke tests and CI. *)

val with_handicap : ns:int -> string -> arm list -> arm list
(** Inject a busy-wait of [ns] nanoseconds after every run of the named
    arm — a synthetic regression for exercising the gate end-to-end.
    @raise Invalid_argument when no arm has that name. *)

val with_alloc_handicap : words:int -> string -> arm list -> arm list
(** Inject a synthetic allocation of [words] minor words after every run
    of the named arm — an allocation regression for exercising the
    [gc.minor_w] gate end-to-end without touching the arm's timing
    meaningfully.
    @raise Invalid_argument when no arm has that name. *)
