open Wl_digraph
module Ugraph = Wl_conflict.Ugraph
module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace

let c_builds = Metrics.counter "conflict.builds"

let build_impl inst =
  let n = Instance.n_paths inst in
  let cg = Ugraph.create n in
  let g = Instance.graph inst in
  (* Emit conflict pairs straight from the CSR slices: no per-arc user list
     is materialized. *)
  let off, ids = Instance.csr_index inst in
  let module Flat = Wl_util.Flat in
  for a = 0 to Digraph.n_arcs g - 1 do
    let lo = Flat.get off a and hi = Flat.get off (a + 1) in
    for i = lo to hi - 1 do
      (* Hoisted: the Bigarray read costs two loads and ocamlopt does
         no loop-invariant motion of its own. *)
      let u = Flat.unsafe_get ids i in
      for j = i + 1 to hi - 1 do
        Ugraph.add_edge cg u (Flat.unsafe_get ids j)
      done
    done
  done;
  cg

let build inst =
  Metrics.incr c_builds;
  if Trace.enabled () then
    Trace.with_span
      ~args:[ ("paths", Trace.Int (Instance.n_paths inst)) ]
      "conflict.build"
      (fun () -> build_impl inst)
  else build_impl inst

let helly_witness inst =
  let cg = build inst in
  let n = Instance.n_paths inst in
  let share_common_arc is =
    match is with
    | [] -> true
    | i0 :: rest ->
      List.exists
        (fun a -> List.for_all (fun i -> Dipath.mem_arc (Instance.path inst i) a) rest)
        (Dipath.arcs (Instance.path inst i0))
  in
  let result = ref None in
  (try
     for i = 0 to n - 1 do
       for j = i + 1 to n - 1 do
         if Ugraph.mem_edge cg i j then
           for k = j + 1 to n - 1 do
             if
               Ugraph.mem_edge cg i k && Ugraph.mem_edge cg j k
               && not (share_common_arc [ i; j; k ])
             then begin
               result := Some [ i; j; k ];
               raise Exit
             end
           done
       done
     done
   with Exit -> ());
  !result

let clique_lower_bound inst = Load.pi inst
