(* Tests for the Theorem 6 algorithm: UPP-DAGs with one internal cycle get a
   valid assignment within ceil(4 pi / 3) wavelengths (on distinct-dipath
   families; see the faithfulness note in theorem6.mli). *)

open Helpers
open Wl_core
module Prng = Wl_util.Prng
module Figures = Wl_netgen.Figures
module Generators = Wl_netgen.Generators
module Path_gen = Wl_netgen.Path_gen

let test_upper_bound_formula () =
  check_int "pi=0" 0 (Theorem6.upper_bound 0);
  check_int "pi=1" 2 (Theorem6.upper_bound 1);
  check_int "pi=2" 3 (Theorem6.upper_bound 2);
  check_int "pi=3" 4 (Theorem6.upper_bound 3);
  check_int "pi=6" 8 (Theorem6.upper_bound 6)

let within_bound inst =
  let a, stats = Theorem6.color_with_stats inst in
  Assignment.is_valid inst a
  && stats.Theorem6.pi = Load.pi inst
  && stats.Theorem6.n_colors = Assignment.n_wavelengths (Assignment.normalize a)
  && stats.Theorem6.n_colors <= Theorem6.upper_bound stats.Theorem6.pi

let random_distinct =
  qtest "valid and within ceil(4 pi/3) on random one-cycle UPP instances"
    seed_gen ~count:150 (fun seed ->
      within_bound (random_upp_one_cycle_instance ~distinct:true seed))

let random_distinct_bigger =
  qtest "same, with larger families" seed_gen ~count:30 (fun seed ->
      within_bound (random_upp_one_cycle_instance ~k:30 ~distinct:true seed))

let test_on_figures () =
  List.iter
    (fun (name, inst) -> check name true (within_bound inst))
    [
      ("fig5 k=2", Figures.fig5 2);
      ("fig5 k=3", Figures.fig5 3);
      ("fig5 k=5", Figures.fig5 5);
      ("havet h=1", Figures.havet 1);
    ]

let test_not_applicable () =
  (* No internal cycle. *)
  let rng = Prng.create 4 in
  let dag = Generators.gnp_no_internal_cycle rng 12 0.2 in
  let inst = Path_gen.random_instance rng dag 8 in
  (try
     ignore (Theorem6.color inst);
     Alcotest.fail "should not apply without internal cycle"
   with Theorem6.Not_applicable _ -> ());
  (* Not UPP: figure 3's graph. *)
  let inst3 = Figures.fig3 () in
  try
    ignore (Theorem6.color inst3);
    Alcotest.fail "should not apply to non-UPP DAGs"
  with Theorem6.Not_applicable _ -> ()

let test_empty_family () =
  let dag = Figures.fig5_graph 2 in
  let inst = Instance.make dag [] in
  let a, stats = Theorem6.color_with_stats inst in
  check "empty assignment" true (a = [||]);
  check_int "zero colors" 0 stats.Theorem6.n_colors

let replicated_families_valid =
  (* The algorithm stays correct on replicated families even where the
     paper's fresh-color accounting breaks down; here we only demand
     validity plus the weaker pi + pi/2 + 1 budget that the per-class
     repair guarantees structurally. *)
  qtest "valid on replicated families" seed_gen ~count:30 (fun seed ->
      let base = random_upp_one_cycle_instance ~k:6 ~distinct:true seed in
      let inst = Theorem2.replicate base 3 in
      let a, stats = Theorem6.color_with_stats inst in
      Assignment.is_valid inst a
      && stats.Theorem6.n_colors <= Load.pi inst + (Load.pi inst / 2) + 2)

let test_replicated_havet_valid () =
  List.iter
    (fun h ->
      let inst = Figures.havet h in
      let a, stats = Theorem6.color_with_stats inst in
      check "valid" true (Assignment.is_valid inst a);
      (* On this family the minimum is ceil(8h/3); the by-the-book
         algorithm may overshoot (see theorem6.mli) but never below. *)
      check "not below optimum" true
        (stats.Theorem6.n_colors >= Replication.ceil_div (8 * h) 3))
    [ 1; 2; 3; 4 ]

let cycle_type_accounts_for_pi =
  qtest "permutation cycle type sums to pi" seed_gen ~count:60 (fun seed ->
      let inst = random_upp_one_cycle_instance ~distinct:true seed in
      let _, stats = Theorem6.color_with_stats inst in
      let total =
        List.fold_left (fun acc (l, m) -> acc + (l * m)) 0 stats.Theorem6.cycle_type
      in
      total = stats.Theorem6.pi)

let split_arc_is_on_cycle =
  qtest "split arc lies on the internal cycle" seed_gen ~count:40 (fun seed ->
      let inst = random_upp_one_cycle_instance ~distinct:true seed in
      let dag = Instance.dag inst in
      let _, stats = Theorem6.color_with_stats inst in
      if stats.Theorem6.pi = 0 then stats.Theorem6.split_arc = -1
      else
        match Wl_dag.Internal_cycle.find_canonical dag with
        | None -> false
        | Some can ->
          List.mem stats.Theorem6.split_arc
            (Wl_dag.Internal_cycle.arcs_of_canonical can))

let stats_fresh_consistent =
  qtest "colors used stay within pi + fresh" seed_gen ~count:60 (fun seed ->
      let inst = random_upp_one_cycle_instance ~distinct:true seed in
      let _, stats = Theorem6.color_with_stats inst in
      stats.Theorem6.n_colors <= stats.Theorem6.pi + stats.Theorem6.fresh_colors)

let suite =
  [
    ( "theorem-6",
      [
        Alcotest.test_case "bound formula" `Quick test_upper_bound_formula;
        random_distinct;
        random_distinct_bigger;
        Alcotest.test_case "paper figures" `Quick test_on_figures;
        Alcotest.test_case "not applicable cases" `Quick test_not_applicable;
        Alcotest.test_case "empty family" `Quick test_empty_family;
        replicated_families_valid;
        Alcotest.test_case "replicated havet validity" `Quick
          test_replicated_havet_valid;
        cycle_type_accounts_for_pi;
        split_arc_is_on_cycle;
        stats_fresh_consistent;
      ] );
  ]
