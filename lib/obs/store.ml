(* Append-only bench trajectory, keyed by git rev and environment.

   One JSONL line per recorded bench run (schema wavelength-bench-core/3);
   every point summarizes repeated measurements as median + MAD +
   coefficient of variation, so the regression detector downstream can
   distinguish a real shift from machine noise.  The reader also accepts
   the older /1-/2 single-measurement shape (BENCH_core.json style, both
   as a standalone pretty-printed object and as JSONL lines), mapping
   ns_per_op to a one-run sample, so pre-observatory points replay into
   the same history. *)

module Jsonx = Wl_json.Jsonx

let schema = "wavelength-bench-core/3"
let schema_prefix = "wavelength-bench-core/"

type sample = { median_ns : float; mad_ns : float; cv : float; runs : int }

type point = {
  name : string;
  params : (string * int) list;
  extras : (string * float) list;
  sample : sample;
  baseline_ns : float option;
  counters : (string * Jsonx.t) list;
}

type entry = {
  rev : string;
  timestamp : string;
  domains : int;
  ocaml_version : string;
  note : string;
  points : point list;
  extra : (string * Jsonx.t) list;
}

(* --- robust statistics -------------------------------------------------- *)

let median_of_sorted a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Store.median: empty";
  if n land 1 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let median xs =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  median_of_sorted a

let mad ~center xs =
  median (List.map (fun x -> Float.abs (x -. center)) xs)

let summarize samples =
  if samples = [] then invalid_arg "Store.summarize: no samples";
  let med = median samples in
  let n = float_of_int (List.length samples) in
  let mean = List.fold_left ( +. ) 0. samples /. n in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0. samples
    /. n
  in
  let cv = if mean = 0. then 0. else sqrt var /. Float.abs mean in
  { median_ns = med; mad_ns = mad ~center:med samples; cv; runs = List.length samples }

(* --- environment metadata ------------------------------------------------ *)

let git_rev () =
  match Sys.getenv_opt "WL_GIT_REV" with
  | Some r when r <> "" -> r
  | _ -> (
    try
      let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
      let line = try input_line ic with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ -> "unknown"
    with _ -> "unknown")

let timestamp_now () =
  let t = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

let make ?rev ?timestamp ?(note = "") ?(extra = []) ~domains points =
  {
    rev = (match rev with Some r -> r | None -> git_rev ());
    timestamp = (match timestamp with Some t -> t | None -> timestamp_now ());
    domains;
    ocaml_version = Sys.ocaml_version;
    note;
    points;
    extra;
  }

(* --- JSON --------------------------------------------------------------- *)

let json_of_instrument = function
  | Metrics.Counter v -> Jsonx.Int v
  | Metrics.Histogram h ->
    Jsonx.Obj
      [
        ("count", Jsonx.Int h.Metrics.count);
        ("sum", Jsonx.Int h.Metrics.sum);
        ("min", Jsonx.Int h.Metrics.min);
        ("max", Jsonx.Int h.Metrics.max);
      ]
  | Metrics.Latency s ->
    Jsonx.Obj
      [
        ("count", Jsonx.Int s.Hdr.count);
        ("sum", Jsonx.Int s.Hdr.sum);
        ("min", Jsonx.Int s.Hdr.min);
        ("max", Jsonx.Int s.Hdr.max);
        ("p50", Jsonx.Int s.Hdr.p50);
        ("p90", Jsonx.Int s.Hdr.p90);
        ("p99", Jsonx.Int s.Hdr.p99);
        ("p999", Jsonx.Int s.Hdr.p999);
      ]

let point_to_json p =
  Jsonx.Obj
    ([ ("name", Jsonx.Str p.name) ]
    @ List.map (fun (k, v) -> (k, Jsonx.Int v)) p.params
    @ List.map (fun (k, v) -> (k, Jsonx.Float v)) p.extras
    @ [
        ("median_ns", Jsonx.Float p.sample.median_ns);
        ("mad_ns", Jsonx.Float p.sample.mad_ns);
        ("cv", Jsonx.Float p.sample.cv);
        ("runs", Jsonx.Int p.sample.runs);
      ]
    @ (match p.baseline_ns with
      | Some b -> [ ("baseline_ns", Jsonx.Float b) ]
      | None -> [])
    @ [ ("counters", Jsonx.Obj p.counters) ])

let to_json e =
  Jsonx.Obj
    ([
       ("schema", Jsonx.Str schema);
       ("rev", Jsonx.Str e.rev);
       ("timestamp", Jsonx.Str e.timestamp);
       ("domains", Jsonx.Int e.domains);
       ("ocaml", Jsonx.Str e.ocaml_version);
     ]
    @ (if e.note = "" then [] else [ ("note", Jsonx.Str e.note) ])
    @ [ ("benches", Jsonx.Arr (List.map point_to_json e.points)) ]
    @ e.extra)

let to_float = function
  | Jsonx.Float f -> Some f
  | Jsonx.Int i -> Some (float_of_int i)
  | _ -> None

(* Keys of a point object that are not free params/extras. *)
let known_point_keys =
  [
    "name"; "median_ns"; "mad_ns"; "cv"; "runs"; "baseline_ns"; "counters";
    "ns_per_op"; "baseline_ns_per_op"; "speedup";
  ]

let point_of_json ~legacy j =
  match j with
  | Jsonx.Obj fields -> (
    let str k = Option.bind (Jsonx.member k j) Jsonx.to_str in
    let num k = Option.bind (Jsonx.member k j) to_float in
    let int k = Option.bind (Jsonx.member k j) Jsonx.to_int in
    match str "name" with
    | None -> Error "bench point without a name"
    | Some name -> (
      let params, extras =
        List.fold_left
          (fun (ps, es) (k, v) ->
            if List.mem k known_point_keys then (ps, es)
            else
              match v with
              | Jsonx.Int i -> ((k, i) :: ps, es)
              | Jsonx.Float f -> (ps, (k, f) :: es)
              | _ -> (ps, es))
          ([], []) fields
      in
      let params = List.rev params and extras = List.rev extras in
      let counters =
        match Jsonx.member "counters" j with
        | Some (Jsonx.Obj kvs) -> kvs
        | _ -> []
      in
      let mk sample baseline_ns =
        Ok { name; params; extras; sample; baseline_ns; counters }
      in
      if legacy then
        match num "ns_per_op" with
        | None -> Error (name ^ ": legacy point without ns_per_op")
        | Some ns ->
          mk
            { median_ns = ns; mad_ns = 0.; cv = 0.; runs = 1 }
            (num "baseline_ns_per_op")
      else
        match num "median_ns" with
        | None -> Error (name ^ ": point without median_ns")
        | Some med ->
          mk
            {
              median_ns = med;
              mad_ns = Option.value ~default:0. (num "mad_ns");
              cv = Option.value ~default:0. (num "cv");
              runs = Option.value ~default:1 (int "runs");
            }
            (num "baseline_ns")))
  | _ -> Error "bench point is not an object"

let known_entry_keys =
  [ "schema"; "rev"; "timestamp"; "domains"; "ocaml"; "note"; "benches" ]

let of_json j =
  match j with
  | Jsonx.Obj fields -> (
    let str k = Option.bind (Jsonx.member k j) Jsonx.to_str in
    let schema_version =
      match str "schema" with
      | Some s
        when String.length s > String.length schema_prefix
             && String.sub s 0 (String.length schema_prefix) = schema_prefix ->
        int_of_string_opt
          (String.sub s
             (String.length schema_prefix)
             (String.length s - String.length schema_prefix))
      | _ -> None
    in
    match schema_version with
    | None -> Error "not a wavelength-bench-core entry"
    | Some v -> (
      let legacy = v < 3 in
      let benches =
        match Option.bind (Jsonx.member "benches" j) Jsonx.to_list with
        | Some l -> Ok l
        | None -> Error "entry without a benches array"
      in
      match benches with
      | Error e -> Error e
      | Ok benches -> (
        let rec points acc = function
          | [] -> Ok (List.rev acc)
          | b :: rest -> (
            match point_of_json ~legacy b with
            | Ok p -> points (p :: acc) rest
            | Error e -> Error e)
        in
        match points [] benches with
        | Error e -> Error e
        | Ok points ->
          let extra =
            List.filter (fun (k, _) -> not (List.mem k known_entry_keys)) fields
          in
          Ok
            {
              rev = Option.value ~default:"unknown" (str "rev");
              timestamp = Option.value ~default:"" (str "timestamp");
              domains =
                Option.value ~default:0
                  (Option.bind (Jsonx.member "domains" j) Jsonx.to_int);
              ocaml_version = Option.value ~default:"" (str "ocaml");
              note = Option.value ~default:"" (str "note");
              points;
              extra;
            })))
  | _ -> Error "entry is not an object"

(* --- files --------------------------------------------------------------- *)

let append path e =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (Jsonx.to_string (to_json e));
  output_char oc '\n';
  close_out oc

let write_file path e =
  let oc = open_out path in
  output_string oc (Jsonx.to_string ~pretty:true (to_json e));
  output_char oc '\n';
  close_out oc

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
    let contents = String.trim contents in
    if contents = "" then Ok []
    else
      (* A whole-file parse succeeds for a standalone (possibly
         pretty-printed) object — the BENCH_core.json shape; a JSONL
         trajectory fails it with trailing garbage and is parsed line by
         line instead. *)
      match Jsonx.parse contents with
      | Ok j -> Result.map (fun e -> [ e ]) (of_json j)
      | Error _ ->
        let lines =
          List.filter
            (fun l -> String.trim l <> "")
            (String.split_on_char '\n' contents)
        in
        let rec go i acc = function
          | [] -> Ok (List.rev acc)
          | line :: rest -> (
            match Result.bind (Jsonx.parse line) of_json with
            | Ok e -> go (i + 1) (e :: acc) rest
            | Error msg -> Error (Printf.sprintf "line %d: %s" i msg))
        in
        go 1 [] lines)

(* --- regression gate ------------------------------------------------------

   Rolling baseline: for each bench in the current entry, take the
   medians it recorded in the last [window] history entries that contain
   it, and center the baseline at the median of those medians with a MAD
   over the same series.  The tolerance is max(threshold% of the
   baseline, 3 x that MAD): the percentage floor absorbs the single-
   point/zero-MAD case, the MAD term widens the band exactly when the
   history itself is noisy — so a pure-noise series stays green while a
   monotone drift of the same amplitude trips.  Shifts are flagged in
   both directions: an unexplained improvement is usually a broken bench
   (dead-code elimination, a size parameter change) and deserves a look
   before it silently becomes the new baseline. *)

type verdict = Stable | Regression | Improvement | New_bench

type alloc_check = {
  current_w : float;
  baseline_w : float;
  tolerance_w : float;
  alloc_verdict : verdict;
}

type bench_verdict = {
  bench : string;
  current_ns : float;
  baseline_med_ns : float;
  baseline_mad_ns : float;
  tolerance_ns : float;
  delta_pct : float;
  verdict : verdict;
  alloc : alloc_check option;
}

type comparison = {
  verdicts : bench_verdict list;
  regressions : int;
  improvements : int;
  stable : int;
  new_benches : int;
  alloc_regressions : int;
}

let last_n n xs =
  let len = List.length xs in
  if len <= n then xs else List.filteri (fun i _ -> i >= len - n) xs

(* The per-op minor-allocation figure recorded by the runner. *)
let alloc_key = "gc.minor_w"

(* Words of slack always granted on top of the percentage/MAD band: a
   zero-allocation baseline must not flag on a single boxed temporary,
   and tiny footprints jitter by a word or two of GC bookkeeping. *)
let alloc_floor_w = 64.

let alloc_check_of ~window ~threshold_pct ~history p =
  match List.assoc_opt alloc_key p.extras with
  | None -> None
  | Some current_w -> (
    let history_words =
      List.filter_map
        (fun e ->
          List.find_map
            (fun q ->
              if q.name = p.name then List.assoc_opt alloc_key q.extras
              else None)
            e.points)
        history
      |> last_n window
    in
    match history_words with
    | [] -> None
    | ws ->
      let base = median ws in
      let base_mad = mad ~center:base ws in
      let tolerance_w =
        Float.max alloc_floor_w
          (Float.max (threshold_pct /. 100. *. base) (3. *. base_mad))
      in
      let delta = current_w -. base in
      let alloc_verdict =
        if delta > tolerance_w then Regression
        else if delta < -.tolerance_w then Improvement
        else Stable
      in
      Some { current_w; baseline_w = base; tolerance_w; alloc_verdict })

let compare ?(window = 5) ?(threshold_pct = 10.) ~history entry =
  let verdicts =
    List.map
      (fun p ->
        let history_medians =
          List.filter_map
            (fun e ->
              List.find_map
                (fun q ->
                  if q.name = p.name then Some q.sample.median_ns else None)
                e.points)
            history
          |> last_n window
        in
        let alloc = alloc_check_of ~window ~threshold_pct ~history p in
        match history_medians with
        | [] ->
          {
            bench = p.name;
            current_ns = p.sample.median_ns;
            baseline_med_ns = 0.;
            baseline_mad_ns = 0.;
            tolerance_ns = 0.;
            delta_pct = 0.;
            verdict = New_bench;
            alloc;
          }
        | meds ->
          let base = median meds in
          let base_mad = mad ~center:base meds in
          let tolerance =
            Float.max (threshold_pct /. 100. *. base) (3. *. base_mad)
          in
          let delta = p.sample.median_ns -. base in
          let verdict =
            if delta > tolerance then Regression
            else if delta < -.tolerance then Improvement
            else Stable
          in
          {
            bench = p.name;
            current_ns = p.sample.median_ns;
            baseline_med_ns = base;
            baseline_mad_ns = base_mad;
            tolerance_ns = tolerance;
            delta_pct = (if base = 0. then 0. else delta /. base *. 100.);
            verdict;
            alloc;
          })
      entry.points
  in
  let count v = List.length (List.filter (fun b -> b.verdict = v) verdicts) in
  let alloc_regressions =
    List.length
      (List.filter
         (fun b ->
           match b.alloc with
           | Some a -> a.alloc_verdict = Regression
           | None -> false)
         verdicts)
  in
  {
    verdicts;
    regressions = count Regression;
    improvements = count Improvement;
    stable = count Stable;
    new_benches = count New_bench;
    alloc_regressions;
  }

let pp_verdict ppf = function
  | Stable -> Format.pp_print_string ppf "stable"
  | Regression -> Format.pp_print_string ppf "REGRESSION"
  | Improvement -> Format.pp_print_string ppf "improvement"
  | New_bench -> Format.pp_print_string ppf "new"

let pp_alloc ppf = function
  | None -> ()
  | Some a -> (
    match a.alloc_verdict with
    | Stable | New_bench -> ()
    | Regression ->
      Format.fprintf ppf "  ALLOC %.0fw (was %.0fw)" a.current_w a.baseline_w
    | Improvement ->
      Format.fprintf ppf "  alloc %.0fw (was %.0fw)" a.current_w a.baseline_w)

let pp_comparison ppf c =
  Format.fprintf ppf "@[<v>%-34s %12s %12s %8s %10s  %s" "bench" "current"
    "baseline" "delta" "tolerance" "verdict";
  List.iter
    (fun v ->
      match v.verdict with
      | New_bench ->
        Format.fprintf ppf "@,%-34s %10.0fns %12s %8s %10s  %a%a" v.bench
          v.current_ns "-" "-" "-" pp_verdict v.verdict pp_alloc v.alloc
      | _ ->
        Format.fprintf ppf "@,%-34s %10.0fns %10.0fns %+7.1f%% %8.0fns  %a%a"
          v.bench v.current_ns v.baseline_med_ns v.delta_pct v.tolerance_ns
          pp_verdict v.verdict pp_alloc v.alloc)
    c.verdicts;
  Format.fprintf ppf
    "@,%d regression(s), %d improvement(s), %d stable, %d new, %d alloc \
     regression(s)@]"
    c.regressions c.improvements c.stable c.new_benches c.alloc_regressions
