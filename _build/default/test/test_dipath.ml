(* Tests for dipaths: validation, composition, intersections. *)

open Helpers
open Wl_digraph
module Prng = Wl_util.Prng

let line n = Digraph.of_arcs n (List.init (n - 1) (fun i -> (i, i + 1)))

let test_make_validation () =
  let g = line 5 in
  Alcotest.check_raises "too short"
    (Invalid_argument "Dipath: needs at least two vertices") (fun () ->
      ignore (Dipath.make g [ 2 ]));
  Alcotest.check_raises "missing arc" (Invalid_argument "Dipath: missing arc v0 -> v2")
    (fun () -> ignore (Dipath.make g [ 0; 2 ]));
  let p = Dipath.make g [ 1; 2; 3 ] in
  check_int "n_arcs" 2 (Dipath.n_arcs p);
  check_int "src" 1 (Dipath.src p);
  check_int "dst" 3 (Dipath.dst p);
  check "vertices" true (Dipath.vertices p = [ 1; 2; 3 ])

let test_repeated_vertex () =
  let g = Digraph.of_arcs 3 [ (0, 1); (1, 2) ] in
  Alcotest.check_raises "repeat" (Invalid_argument "Dipath: repeated vertex")
    (fun () -> ignore (Dipath.make g [ 0; 1; 2; 0 ]))

let test_of_arcs () =
  let g = line 5 in
  let p = Dipath.of_arcs g [ 1; 2; 3 ] in
  check "vertices from arcs" true (Dipath.vertices p = [ 1; 2; 3; 4 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Dipath.of_arcs: empty")
    (fun () -> ignore (Dipath.of_arcs g []))

let test_concat_sub () =
  let g = line 7 in
  let p = Dipath.make g [ 0; 1; 2; 3 ] in
  let q = Dipath.make g [ 3; 4; 5 ] in
  let pq = Dipath.concat g p q in
  check "concat" true (Dipath.vertices pq = [ 0; 1; 2; 3; 4; 5 ]);
  let s = Dipath.sub g pq 1 3 in
  check "sub" true (Dipath.vertices s = [ 1; 2; 3 ]);
  let s2 = Dipath.sub_between g pq 2 5 in
  check "sub_between" true (Dipath.vertices s2 = [ 2; 3; 4; 5 ]);
  Alcotest.check_raises "mismatch" (Invalid_argument "Dipath.concat: endpoints do not match")
    (fun () -> ignore (Dipath.concat g q p))

let test_membership () =
  let g = line 6 in
  let p = Dipath.make g [ 1; 2; 3; 4 ] in
  check "mem_vertex" true (Dipath.mem_vertex p 3);
  check "not mem_vertex" false (Dipath.mem_vertex p 0);
  check "vertex_index" true (Dipath.vertex_index p 3 = Some 2);
  (* arc ids on the line are (i, i+1) -> id i *)
  check "mem_arc" true (Dipath.mem_arc p 2);
  check "not mem_arc" false (Dipath.mem_arc p 0)

let test_sharing () =
  let g = line 8 in
  let p = Dipath.make g [ 0; 1; 2; 3; 4 ] in
  let q = Dipath.make g [ 2; 3; 4; 5 ] in
  let r = Dipath.make g [ 5; 6; 7 ] in
  check "shares" true (Dipath.shares_arc p q);
  check "no share" false (Dipath.shares_arc p r);
  check "shared arcs" true (Dipath.shared_arcs p q = [ 2; 3 ]);
  check "interval" true (Dipath.intersection_interval g p q = Some (2, 4));
  check "no interval" true (Dipath.intersection_interval g p r = None)

let test_non_interval_intersection () =
  (* Two paths sharing two separated arcs: p = 0-1-2-3-4-5, q = 0-1,
     then around, then 4-5: build a graph with a bypass. *)
  let g =
    Digraph.of_arcs 7
      [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (1, 6); (6, 4) ]
  in
  let p = Dipath.make g [ 0; 1; 2; 3; 4; 5 ] in
  let q = Dipath.make g [ 0; 1; 6; 4; 5 ] in
  Alcotest.check_raises "two intervals"
    (Invalid_argument "Dipath.intersection_interval: not a single interval")
    (fun () -> ignore (Dipath.intersection_interval g p q))

let mem_arc_vs_list =
  qtest "mem_arc agrees with list membership" seed_gen (fun seed ->
      let rng = Prng.create seed in
      let dag = Wl_netgen.Generators.gnp_dag rng 14 0.3 in
      match Wl_netgen.Path_gen.random_walk rng dag with
      | None -> true
      | Some p ->
        let arcs = Dipath.arcs p in
        let g = Wl_dag.Dag.graph dag in
        List.for_all
          (fun a -> Dipath.mem_arc p a = List.mem a arcs)
          (List.init (Digraph.n_arcs g) Fun.id))

let shares_arc_symmetric =
  qtest "shares_arc is symmetric and matches shared_arcs" seed_gen (fun seed ->
      let rng = Prng.create seed in
      let dag = Wl_netgen.Generators.gnp_dag rng 14 0.3 in
      match Wl_netgen.Path_gen.random_family rng dag 2 with
      | [ p; q ] ->
        Dipath.shares_arc p q = Dipath.shares_arc q p
        && Dipath.shares_arc p q = (Dipath.shared_arcs p q <> [])
      | _ -> true)

let test_pp () =
  let g = line 3 in
  Digraph.set_label g 0 "x";
  let p = Dipath.make g [ 0; 1; 2 ] in
  check "to_string" true (Dipath.to_string g p = "x -> v1 -> v2")

let suite =
  [
    ( "dipath",
      [
        Alcotest.test_case "validation" `Quick test_make_validation;
        Alcotest.test_case "repeated vertex" `Quick test_repeated_vertex;
        Alcotest.test_case "of_arcs" `Quick test_of_arcs;
        Alcotest.test_case "concat and sub" `Quick test_concat_sub;
        Alcotest.test_case "membership" `Quick test_membership;
        Alcotest.test_case "arc sharing" `Quick test_sharing;
        Alcotest.test_case "non-interval intersection" `Quick
          test_non_interval_intersection;
        mem_arc_vs_list;
        shares_arc_symmetric;
        Alcotest.test_case "pretty printing" `Quick test_pp;
      ] );
  ]
