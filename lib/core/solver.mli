(** End-to-end wavelength assignment with method dispatch.

    Applies the sharpest applicable result from the paper:

    {ul
    {- no internal cycle: Theorem 1 — optimal, [w = pi];}
    {- UPP with exactly one internal cycle: Theorem 6 — at most
       [ceil(4 pi/3)] wavelengths (additionally refined to an exact optimum
       when the instance is small enough for the exact solver);}
    {- UPP with several internal cycles: the iterated Theorem 6 recursion;}
    {- otherwise: exact conflict-graph coloring when the family is small,
       DSATUR heuristic at scale.}} *)

type method_used =
  | Theorem_1  (** optimal by construction *)
  | Theorem_6  (** within [ceil(4 pi/3)] *)
  | Theorem_6_iterated
      (** UPP with [C >= 2] internal cycles: within [C] nested ceilings of
          [4/3 pi] (the paper's closing remark) *)
  | Exact_coloring  (** optimal by search *)
  | Heuristic  (** DSATUR / Welsh–Powell upper bound *)

type lower_bound_source =
  | From_load  (** the arc load [pi] (on UPP-DAGs also the clique number) *)
  | From_clique  (** a greedy clique in the conflict graph beat [pi] *)
  | From_exact_chromatic  (** exact chromatic number: the bound is tight *)

type report = {
  classification : Wl_dag.Classify.t;
  pi : int;
  lower_bound : int;  (** best known lower bound on [w] *)
  lower_bound_source : lower_bound_source;  (** where that bound came from *)
  assignment : Assignment.t;
  n_wavelengths : int;
  method_used : method_used;
  optimal : bool;  (** [n_wavelengths = lower_bound] *)
}

val solve : ?exact_limit:int -> ?domains:int -> Instance.t -> report
(** [exact_limit] (default 24) caps the family size for which the exact
    coloring / exact clique solvers are invoked on the fallback paths.
    [domains] is forwarded to the component-parallel coloring heuristic
    ({!Wl_conflict.Coloring.dsatur_par}) on the large-instance fallback
    paths; it does not change any result, only how the work is spread.
    The returned assignment is always valid ({!Assignment.is_valid}). *)

val solve_result :
  ?exact_limit:int -> ?domains:int -> Instance.t -> (report, Error.t) result
(** Exception-free {!solve}: a negative [exact_limit] or any precondition
    violation surfaces as [Error (Precondition _)]. *)

val method_name : method_used -> string
val lower_bound_source_name : lower_bound_source -> string

val pp_report : ?stats:bool -> Format.formatter -> report -> unit
(** With [~stats:false] (the default) the output is byte-identical to the
    historical format.  With [~stats:true] the lower-bound line carries its
    provenance and a {!Wl_obs.Metrics.pp_summary} counter table is
    appended (enable metrics before {!solve} for it to be non-empty). *)
