lib/dag/upp.ml: Array Dag Digraph Dipath Traversal Wl_digraph Wl_util
