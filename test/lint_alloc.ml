(* Allocation-discipline lint for the GC-quiet hot files.

   The solver core (theorem1.ml), DSATUR (coloring.ml) and the engine
   (engine.ml) promise gc.minor_w = 0 on their warm paths; every
   allocation primitive they do contain lives on a cold path — session
   construction, capacity growth, cold queries.  This lint enforces that
   each such line says so: any line matching an allocation primitive
   must carry an [alloc-ok] comment marker, so a new allocation cannot
   slip into these files without a visible, reviewable claim that it is
   cold.  (The claim itself is checked dynamically by the zero-alloc
   tests in test_alloc.ml and the bench gate's gc.minor_w figure.)

   Usage: lint_alloc FILE...; exits 1 listing the offending lines. *)

let primitives =
  [ "Array.make"; "Array.init"; "Array.create_float"; "Hashtbl.create";
    "Queue.create"; "Buffer.create"; "Array.append"; "Array.of_list" ]

let contains line sub =
  let n = String.length line and m = String.length sub in
  let rec at i = i + m <= n && (String.sub line i m = sub || at (i + 1)) in
  at 0

let lint_file path =
  let ic = open_in path in
  let bad = ref [] in
  (try
     let lineno = ref 0 in
     while true do
       let line = input_line ic in
       incr lineno;
       if
         List.exists (contains line) primitives
         && not (contains line "alloc-ok")
       then bad := (!lineno, line) :: !bad
     done
   with End_of_file -> close_in ic);
  List.rev !bad

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  let failures =
    List.concat_map
      (fun f -> List.map (fun (l, s) -> (f, l, s)) (lint_file f))
      files
  in
  if failures = [] then
    Printf.printf "lint_alloc: %d file(s) clean\n" (List.length files)
  else begin
    List.iter
      (fun (f, l, s) ->
        Printf.eprintf
          "%s:%d: allocation primitive without an alloc-ok marker:\n  %s\n" f
          l (String.trim s))
      failures;
    Printf.eprintf
      "lint_alloc: %d unmarked allocation(s).  Either move the allocation \
       off the hot files, or mark the line with (* alloc-ok *) and justify \
       coldness in review.\n"
      (List.length failures);
    exit 1
  end
