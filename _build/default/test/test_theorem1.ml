(* Tests for the Theorem 1 constructive algorithm: on DAGs without internal
   cycle, the returned assignment is valid and uses exactly pi wavelengths —
   and on DAGs with an internal cycle the recoloring cascade may surface the
   paper's case C, never anything else. *)

open Helpers
open Wl_core
open Wl_digraph
module Dag = Wl_dag.Dag
module Prng = Wl_util.Prng
module Figures = Wl_netgen.Figures
module Generators = Wl_netgen.Generators
module Path_gen = Wl_netgen.Path_gen

let optimal_on inst =
  let assignment = Theorem1.color inst in
  Assignment.is_valid inst assignment
  && Assignment.n_wavelengths (Assignment.normalize assignment) = Load.pi inst

let test_empty_and_trivial () =
  let g = Digraph.of_arcs 2 [ (0, 1) ] in
  let dag = Dag.of_digraph_exn g in
  check "empty family" true (Theorem1.color (Instance.make dag []) = [||]);
  let p = Dipath.make g [ 0; 1 ] in
  let inst = Instance.make dag [ p; p; p ] in
  let a = Theorem1.color inst in
  check "triple arc valid" true (Assignment.is_valid inst a);
  check_int "three wavelengths" 3 (Assignment.n_wavelengths (Assignment.normalize a))

let theorem1_random_no_internal_cycle =
  qtest "w = pi on random DAGs without internal cycle" seed_gen ~count:150
    (fun seed -> optimal_on (random_nic_instance ~n:20 ~k:14 seed))

let theorem1_larger =
  qtest "w = pi at a larger scale" seed_gen ~count:10 (fun seed ->
      optimal_on (random_nic_instance ~n:60 ~p:0.08 ~k:50 seed))

let theorem1_rooted_trees =
  qtest "w = pi on rooted trees" seed_gen ~count:60 (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.random_rooted_tree rng 25 in
      optimal_on (Path_gen.random_instance rng dag 18))

let theorem1_in_trees =
  qtest "w = pi on in-trees (reversed rooted trees)" seed_gen ~count:40
    (fun seed ->
      let rng = Prng.create seed in
      let tree = Generators.random_rooted_tree rng 25 in
      let dag = Dag.of_digraph_exn (Digraph.reverse (Dag.graph tree)) in
      optimal_on (Path_gen.random_instance rng dag 18))

let theorem1_lines =
  qtest "w = pi on lines (interval instances)" seed_gen ~count:40 (fun seed ->
      let rng = Prng.create seed in
      let g = Digraph.of_arcs 20 (List.init 19 (fun i -> (i, i + 1))) in
      let dag = Dag.of_digraph_exn g in
      let paths =
        List.init 15 (fun _ ->
            let lo = Prng.int rng 18 in
            let hi = Prng.int_in rng (lo + 1) 19 in
            Dipath.make g (List.init (hi - lo + 1) (fun i -> lo + i)))
      in
      optimal_on (Instance.make dag paths))

let theorem1_all_to_all_on_trees =
  qtest "w = pi for all-to-all on rooted trees (paper's warm-up)" seed_gen
    ~count:25 (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.random_rooted_tree rng 12 in
      optimal_on (Path_gen.all_to_all_instance dag))

let theorem1_replicated_families =
  qtest "w = pi even on replicated families" seed_gen ~count:40 (fun seed ->
      let inst = random_nic_instance ~n:15 ~k:6 seed in
      optimal_on (Theorem2.replicate inst 3))

let test_fig1_small () =
  (* The k = 2 staircase has no internal cycle: Theorem 1 applies. *)
  let inst = Figures.fig1 2 in
  check_int "no cycles" 0
    (Wl_dag.Internal_cycle.count_independent (Instance.dag inst));
  check "optimal" true (optimal_on inst)

let chain_is_conflicting lists inst chain =
  (* Consecutive chain members must conflict. *)
  let ps = Instance.paths inst in
  let rec go = function
    | a :: (b :: _ as rest) -> Dipath.shares_arc ps.(a) ps.(b) && go rest
    | _ -> true
  in
  ignore lists;
  go chain

let test_case_c_on_fig3 () =
  let inst = Figures.fig3 () in
  match Theorem1.color_result inst with
  | Ok _ -> Alcotest.fail "theorem 1 must fail on fig3's family"
  | Error (chain, junction) ->
    check "chain length" true (List.length chain >= 2);
    check "chain links conflict" true (chain_is_conflicting () inst chain);
    (match Theorem1.witness_internal_cycle inst ~chain ~junction with
    | None -> Alcotest.fail "case C must exhibit an internal cycle"
    | Some walk ->
      let can = Wl_dag.Internal_cycle.canonicalize (Instance.dag inst) walk in
      check "witness verifies" true
        (Wl_dag.Internal_cycle.verify_canonical (Instance.dag inst) can))

let case_c_only_with_internal_cycles =
  qtest "case C implies an internal cycle exists" seed_gen ~count:80 (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.gnp_dag rng 16 0.25 in
      let inst = Path_gen.random_instance rng dag 12 in
      match Theorem1.color_result inst with
      | Ok a ->
        Assignment.is_valid inst a
        && Assignment.n_wavelengths (Assignment.normalize a) = Load.pi inst
      | Error (chain, junction) ->
        Wl_dag.Internal_cycle.has_internal_cycle dag
        && chain_is_conflicting () inst chain
        &&
        (* The case-C construction must exhibit a concrete internal cycle. *)
        (match Theorem1.witness_internal_cycle inst ~chain ~junction with
        | None -> false
        | Some walk ->
          let can = Wl_dag.Internal_cycle.canonicalize dag walk in
          Wl_dag.Internal_cycle.verify_canonical dag can))

(* On every Theorem 2 family, Theorem 1 must reach case C (w = 3 > 2 = pi),
   and the case-C construction must exhibit a verified internal cycle. *)
let case_c_witness_on_theorem2_families =
  qtest "theorem-2 families force case C with a verified witness" seed_gen
    ~count:60 (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.gnp_dag rng 14 0.3 in
      match Theorem2.build dag with
      | None -> true
      | Some inst -> (
        match Theorem1.color_result inst with
        | Ok _ -> false
        | Error (chain, junction) -> (
          match Theorem1.witness_internal_cycle inst ~chain ~junction with
          | None -> false
          | Some walk ->
            let can = Wl_dag.Internal_cycle.canonicalize dag walk in
            Wl_dag.Internal_cycle.verify_canonical dag can)))

let test_deterministic () =
  let inst = random_nic_instance ~n:20 ~k:12 424242 in
  check "same output twice" true (Theorem1.color inst = Theorem1.color inst)

let theorem1_on_theorem2_padded_split () =
  (* The exact shape Theorem 6 feeds it: splitting fig5's cycle arc removes
     the internal cycle, and Theorem 1 must succeed there. *)
  List.iter
    (fun k ->
      let inst = Figures.fig5 k in
      let a = Theorem6.color inst in
      check "theorem6 output valid (exercises theorem1 on split)" true
        (Assignment.is_valid inst a))
    [ 2; 3; 4 ]

let colors_within_palette =
  qtest "every used color is below pi" seed_gen ~count:60 (fun seed ->
      let inst = random_nic_instance ~n:18 ~k:12 seed in
      let a = Theorem1.color inst in
      Array.for_all (fun c -> c >= 0 && c < max 1 (Load.pi inst)) a)

let suite =
  [
    ( "theorem-1",
      [
        Alcotest.test_case "empty and trivial" `Quick test_empty_and_trivial;
        theorem1_random_no_internal_cycle;
        theorem1_larger;
        theorem1_rooted_trees;
        theorem1_in_trees;
        theorem1_lines;
        theorem1_all_to_all_on_trees;
        theorem1_replicated_families;
        Alcotest.test_case "fig1 k=2" `Quick test_fig1_small;
        Alcotest.test_case "case C on fig3" `Quick test_case_c_on_fig3;
        case_c_only_with_internal_cycles;
        case_c_witness_on_theorem2_families;
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "feeds theorem 6 split" `Quick
          theorem1_on_theorem2_padded_split;
        colors_within_palette;
      ] );
  ]
