examples/quickstart.mli:
