wl 2
dag 6
arc 0 2
arc 1 2
arc 2 3
arc 3 4
arc 3 5
path 0 2 3 4
path 1 2 3 5
path 0 2 3 5
