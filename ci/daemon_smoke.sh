#!/bin/sh
# Daemon smoke: launch wld on a unix socket, drive traced session churn
# through the result-typed client, introspect the live daemon (`wl top
# --connect`, `wl trace pull`), SIGTERM, and assert a clean graceful
# drain — exit 0, scrapeable OpenMetrics expositions on both sides, a
# validating pulled trace, tenant-named flight dumps and a non-empty
# per-tenant health listing left behind.
set -eu

WL=$1
STRESS=$2
SOCK=./wld_smoke.sock

"$WL" wld "unix:$SOCK" --shards 2 --metrics-out wld_smoke_metrics.txt \
  --health-dump wld_smoke_health.txt --flight-dump wld_smoke_flight &
WLD_PID=$!

i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  if [ $i -gt 100 ]; then
    echo "daemon never bound $SOCK" >&2
    kill "$WLD_PID" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done

# Churn with tracing on: every request carries a trace context, so the
# daemon-side flight rings and HDR exemplars latch real trace ids.
"$STRESS" --daemon "unix:$SOCK" --sessions 64 --client-threads 4 --ops 8 \
  --trace --metrics-out stress_daemon_metrics.txt

# Live introspection against the still-running daemon: one top frame
# (shard-merged rollups + per-tenant rows) and a pulled merged trace
# that must satisfy the same validator as every other trace artifact.
"$WL" top --connect "unix:$SOCK" --frames 1 \
  --metrics-out top_connect_metrics.txt | grep -q "64 sessions"
"$WL" trace pull "unix:$SOCK" --last 16 -o pulled.trace.json
"$WL" trace-check pulled.trace.json

kill -TERM "$WLD_PID"
wait "$WLD_PID"

"$WL" metrics-check wld_smoke_metrics.txt
"$WL" metrics-check stress_daemon_metrics.txt
"$WL" metrics-check top_connect_metrics.txt

# The drain dumps every tenant's flight ring under its own name
# (PREFIX.TENANT.{jsonl,trace.json}) — 64 tenants, 64 dump pairs, none
# overwriting another, each one a valid trace.
n_dumps=$(ls wld_smoke_flight.*.trace.json | wc -l)
if [ "$n_dumps" -ne 64 ]; then
  echo "expected 64 tenant-named flight dumps, found $n_dumps" >&2
  exit 1
fi
test -s wld_smoke_flight.t00000.jsonl
test -s wld_smoke_flight.t00063.jsonl
"$WL" trace-check wld_smoke_flight.t00000.trace.json
"$WL" trace-check wld_smoke_flight.t00063.trace.json
test -s wld_smoke_health.txt
