lib/netgen/generators.ml: Array Digraph Dipath List Printf Wl_dag Wl_digraph Wl_util
