type t = int

let cap = max_int / 4

let clamp x = if x < 0 then 0 else if x > cap then cap else x

let zero = 0
let one = 1
let of_int = clamp
let to_int x = x

let add a b = clamp (a + b)

let mul a b =
  if a = 0 || b = 0 then 0
  else if a > cap / b then cap
  else a * b

let is_saturated x = x >= cap
let compare = Int.compare
let equal = Int.equal

let pp ppf x =
  if is_saturated x then Format.fprintf ppf ">=%d" cap
  else Format.pp_print_int ppf x
