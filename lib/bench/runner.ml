(* Measurement engine for `wl bench`.

   Timing and observation are separate passes.  The timed pass runs with
   every instrument off — Metrics disabled, no trace sink, no GC probe —
   so ns/op is clean; it produces [runs] batch measurements that
   Store.summarize condenses to median/MAD/CV (median + MAD because a
   loaded CI machine produces one-sided outliers that poison a mean).
   The observation pass then runs the arm once more with Metrics + Prof
   enabled under the discard trace sink, capturing the counter embedding
   (including the prof.<span>.* GC mirrors) without accumulating
   events. *)

module Clock = Wl_obs.Clock
module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace
module Prof = Wl_obs.Prof
module Store = Wl_obs.Store

let measure ?(runs = 7) ?(target_s = 0.35) f =
  (* Fence off garbage from whatever ran before so it isn't collected on
     this arm's clock, then warm caches/branch predictors. *)
  Gc.major ();
  f ();
  (* One calibration run sizes each batch so the whole measurement takes
     ~target_s. *)
  let t0 = Clock.now_ns () in
  f ();
  let est_ns = max (Clock.now_ns () - t0) 100 in
  let per_batch_ns = target_s *. 1e9 /. float_of_int runs in
  let reps = max 1 (min 2000 (int_of_float (per_batch_ns /. float_of_int est_ns))) in
  let samples =
    List.init runs (fun _ ->
        let t0 = Clock.now_ns () in
        for _ = 1 to reps do
          f ()
        done;
        float_of_int (Clock.now_ns () - t0) /. float_of_int reps)
  in
  Store.summarize samples

(* Minor words per op, instruments off.  Warm runs first so retained
   scratch (solver state, engine buffers, DSATUR working sets) reaches
   its steady-state capacity; then the minimum over [reps] single-op
   deltas, so an amortized growth event (a buffer doubling) that lands
   in one rep does not misreport the steady state. *)
let measure_alloc ?(reps = 4) f =
  f ();
  f ();
  f ();
  let best = ref infinity in
  for _ = 1 to reps do
    let w0 = Gc.minor_words () in
    f ();
    let dw = Gc.minor_words () -. w0 in
    if dw < !best then best := dw
  done;
  !best

let observe (arm : Arms.arm) =
  Metrics.reset ();
  Prof.reset ();
  Metrics.set_enabled true;
  Prof.enable ();
  Trace.set_sink Trace.discard;
  Fun.protect
    ~finally:(fun () ->
      Trace.clear ();
      Prof.disable ();
      Metrics.set_enabled false)
    arm.Arms.run;
  let counters =
    List.map
      (fun (name, inst) -> (name, Store.json_of_instrument inst))
      (Metrics.snapshot ())
  in
  let extras = arm.Arms.extras () in
  Metrics.reset ();
  Prof.reset ();
  (counters, extras)

let measure_arm ?runs (arm : Arms.arm) =
  let sample = measure ?runs arm.Arms.run in
  let alloc_w = measure_alloc arm.Arms.run in
  let baseline_ns =
    Option.map (fun b -> (measure ?runs b).Store.median_ns) arm.Arms.baseline
  in
  let counters, extras = observe arm in
  {
    Store.name = arm.Arms.name;
    params = arm.Arms.params;
    extras = extras @ [ (Store.alloc_key, alloc_w) ];
    sample;
    baseline_ns;
    counters;
  }

let run_suite ?(quick = false) ?runs ?(handicaps = []) ?(alloc_handicaps = [])
    ?note ?(domains = 0) ?(on_point = fun (_ : Store.point) -> ()) () =
  let arms = Arms.suite ~quick () in
  let arms =
    List.fold_left
      (fun arms (name, ns) -> Arms.with_handicap ~ns name arms)
      arms handicaps
  in
  let arms =
    List.fold_left
      (fun arms (name, words) -> Arms.with_alloc_handicap ~words name arms)
      arms alloc_handicaps
  in
  let domains =
    if domains > 0 then domains else Wl_util.Parallel.default_domains ()
  in
  let points =
    List.map
      (fun arm ->
        let p = measure_arm ?runs arm in
        on_point p;
        p)
      arms
  in
  Store.make ?note ~domains points
