(* Tests for the workload generators: every generator must deliver exactly
   the structural promise its name makes. *)

open Helpers
open Wl_digraph
module Dag = Wl_dag.Dag
module IC = Wl_dag.Internal_cycle
module Prng = Wl_util.Prng
module Figures = Wl_netgen.Figures
module Generators = Wl_netgen.Generators
module Path_gen = Wl_netgen.Path_gen

let nic_generator =
  qtest "gnp_no_internal_cycle has none" seed_gen ~count:40 (fun seed ->
      let d = Generators.gnp_no_internal_cycle (Prng.create seed) 16 0.3 in
      IC.count_independent d = 0)

let layered_generator =
  qtest "layered is acyclic with genuine layers" seed_gen ~count:20 (fun seed ->
      let rng = Prng.create seed in
      let d = Generators.layered rng ~layers:4 ~width:5 ~p:0.3 in
      Dag.n_vertices d = 20
      && List.for_all
           (fun v ->
             let g = Dag.graph d in
             (* middle-layer vertices have both in- and out-arcs *)
             v < 5 || v >= 15
             || (Digraph.in_degree g v > 0 && Digraph.out_degree g v > 0))
           (Digraph.vertices (Dag.graph d)))

let rooted_tree_generator =
  qtest "random_rooted_tree is a rooted tree" seed_gen ~count:30 (fun seed ->
      let d = Generators.random_rooted_tree (Prng.create seed) 20 in
      Dag.n_arcs d = 19
      && Wl_dag.Classify.is_rooted_forest d
      && Wl_dag.Upp.is_upp d
      && IC.count_independent d = 0)

let backbone_generator =
  qtest "backbone is a DAG with single-source-free layers" seed_gen ~count:15
    (fun seed ->
      let d = Generators.backbone (Prng.create seed) ~pops:4 ~levels:5 in
      Dag.n_vertices d = 20)

let test_fig1_shape () =
  List.iter
    (fun k ->
      let inst = Figures.fig1 k in
      check_int "k dipaths" k (Wl_core.Instance.n_paths inst);
      check_int "pi = 2" 2 (Wl_core.Load.pi inst);
      (* complete conflict graph *)
      let cg = Wl_core.Conflict_of.build inst in
      check_int "all pairs conflict" (k * (k - 1) / 2) (Wl_conflict.Ugraph.n_edges cg))
    [ 2; 3; 4; 5; 6 ]

let test_fig5_rejects_k1 () =
  Alcotest.check_raises "k >= 2" (Invalid_argument "Figures.fig5_graph: k must be >= 2")
    (fun () -> ignore (Figures.fig5_graph 1))

let test_havet_rejects_h0 () =
  Alcotest.check_raises "h >= 1" (Invalid_argument "Figures.havet: h must be >= 1")
    (fun () -> ignore (Figures.havet 0))

let random_walks_are_dipaths =
  qtest "random families consist of valid dipaths over the right graph"
    seed_gen ~count:30 (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.gnp_dag rng 15 0.25 in
      let paths = Path_gen.random_family rng dag 12 in
      (* Dipath.make already validated: check count and lengths. *)
      List.for_all (fun p -> Dipath.n_arcs p >= 1) paths)

let source_sink_paths_maximal =
  qtest "source-sink paths start at sources and end at sinks" seed_gen
    ~count:20 (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.layered rng ~layers:4 ~width:4 ~p:0.4 in
      let g = Dag.graph dag in
      List.for_all
        (fun p ->
          Digraph.in_degree g (Dipath.src p) = 0
          && Digraph.out_degree g (Dipath.dst p) = 0)
        (Path_gen.source_sink_paths rng dag 10))

let all_to_all_counts =
  qtest "all_to_all instance has one dipath per routable pair" seed_gen
    ~count:20 (fun seed ->
      let dag = Generators.gnp_upp (Prng.create seed) 10 0.3 in
      let inst = Path_gen.all_to_all_instance dag in
      Wl_core.Instance.n_paths inst
      = List.length (Wl_dag.Upp.routable_pairs dag))

let traffic_models_routable =
  qtest "traffic models emit routable requests" seed_gen ~count:20 (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.backbone rng ~pops:3 ~levels:4 in
      let uni = Wl_netgen.Traffic.uniform rng dag 20 in
      let hot = Wl_netgen.Traffic.hotspot rng dag ~hubs:2 ~bias:0.7 20 in
      let routable reqs =
        match Wl_core.Routing.route_shortest dag reqs with
        | Ok paths -> List.length paths = List.length reqs
        | Error _ -> false
      in
      routable uni && routable hot)

let hotspot_bias_works =
  qtest "hotspot traffic concentrates on hubs" seed_gen ~count:10 (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.backbone rng ~pops:4 ~levels:5 in
      (* With bias 1.0 every request must touch some hub. *)
      let n = Dag.n_vertices dag in
      ignore n;
      let reqs = Wl_netgen.Traffic.hotspot rng dag ~hubs:3 ~bias:1.0 30 in
      (* We cannot see which vertices were picked as hubs, but with bias 1
         the request endpoints must concentrate: at most 2*3 distinct
         endpoint vertices would be too strict; instead check determinism
         and shape: all requests valid pairs. *)
      List.for_all (fun (x, y) -> x <> y) reqs)

let batches_shape =
  qtest "batches produce the requested shape" seed_gen ~count:10 (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.backbone rng ~pops:3 ~levels:4 in
      let bs =
        Wl_netgen.Traffic.batches rng dag ~batch_size:5 ~n_batches:7
          Wl_netgen.Traffic.uniform
      in
      List.length bs = 7 && List.for_all (fun b -> List.length b = 5) bs)

let min_load_router_incremental =
  qtest "stateful router matches batch routing" seed_gen ~count:20 (fun seed ->
      let rng = Prng.create seed in
      let dag = Generators.backbone rng ~pops:3 ~levels:4 in
      let reqs = Wl_core.Routing.random_requests rng dag 15 in
      let router = Wl_core.Routing.min_load_router dag in
      let one_by_one =
        List.filter_map (fun r -> Result.to_option (router r)) reqs
      in
      match Wl_core.Routing.route_min_load dag reqs with
      | Ok batch -> List.equal Dipath.equal one_by_one batch
      | Error _ -> false)

let generators_are_deterministic =
  qtest "same seed, same graph" seed_gen ~count:20 (fun seed ->
      let d1 = Generators.gnp_dag (Prng.create seed) 14 0.3 in
      let d2 = Generators.gnp_dag (Prng.create seed) 14 0.3 in
      Digraph.equal_structure (Dag.graph d1) (Dag.graph d2))

let suite =
  [
    ( "netgen",
      [
        nic_generator;
        layered_generator;
        rooted_tree_generator;
        backbone_generator;
        Alcotest.test_case "fig1 shape" `Quick test_fig1_shape;
        Alcotest.test_case "fig5 rejects k=1" `Quick test_fig5_rejects_k1;
        Alcotest.test_case "havet rejects h=0" `Quick test_havet_rejects_h0;
        random_walks_are_dipaths;
        source_sink_paths_maximal;
        all_to_all_counts;
        traffic_models_routable;
        hotspot_bias_works;
        batches_shape;
        min_load_router_incremental;
        generators_are_deterministic;
      ] );
  ]
