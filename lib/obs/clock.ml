(* Origin at module init so the ns values stay far from overflow and the
   chrome-trace timestamps start near zero. *)
let origin = Unix.gettimeofday ()

let now_ns () = int_of_float ((Unix.gettimeofday () -. origin) *. 1e9)
let now_us () = (Unix.gettimeofday () -. origin) *. 1e6
