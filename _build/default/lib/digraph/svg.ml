let palette =
  [|
    "#e41a1c"; "#377eb8"; "#4daf4a"; "#984ea3"; "#ff7f00"; "#a65628";
    "#f781bf"; "#17becf"; "#bcbd22"; "#666666";
  |]

(* Layered layout: layer = longest-path depth from sources; vertices within
   a layer stacked vertically in id order. *)
type layout = {
  x : float array;
  y : float array;
  view_w : float;
  view_h : float;
}

let layout_of g =
  let n = Digraph.n_vertices g in
  let depth = Array.make n 0 in
  (match Traversal.topological_order g with
  | Some order ->
    List.iter
      (fun v ->
        List.iter
          (fun w -> if depth.(v) + 1 > depth.(w) then depth.(w) <- depth.(v) + 1)
          (Digraph.succ g v))
      order
  | None -> ());
  let max_depth = Array.fold_left max 0 depth in
  let per_layer = Array.make (max_depth + 1) 0 in
  let row = Array.make n 0 in
  for v = 0 to n - 1 do
    row.(v) <- per_layer.(depth.(v));
    per_layer.(depth.(v)) <- per_layer.(depth.(v)) + 1
  done;
  let max_rows = Array.fold_left max 1 per_layer in
  let dx = 110.0 and dy = 70.0 and margin = 50.0 in
  let x = Array.make n 0.0 and y = Array.make n 0.0 in
  for v = 0 to n - 1 do
    x.(v) <- margin +. (float_of_int depth.(v) *. dx);
    (* Center each layer vertically. *)
    let rows = per_layer.(depth.(v)) in
    let offset = float_of_int (max_rows - rows) /. 2.0 in
    y.(v) <- margin +. ((float_of_int row.(v) +. offset) *. dy)
  done;
  {
    x;
    y;
    view_w = (2.0 *. margin) +. (float_of_int max_depth *. dx);
    view_h = (2.0 *. margin) +. (float_of_int (max_rows - 1) *. dy);
  }

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let header ?width ?height l =
  let w = Option.value ~default:(int_of_float l.view_w) width in
  let h = Option.value ~default:(int_of_float l.view_h) height in
  Printf.sprintf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %.0f %.0f\">\n\
     <defs><marker id=\"arrow\" viewBox=\"0 0 10 10\" refX=\"9\" refY=\"5\" \
     markerWidth=\"6\" markerHeight=\"6\" orient=\"auto-start-reverse\">\
     <path d=\"M 0 0 L 10 5 L 0 10 z\" fill=\"#555\"/></marker></defs>\n\
     <rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n"
    w h l.view_w l.view_h

(* Cubic arc between vertex centers, shortened so arrowheads sit on the
   node boundary; [bend] offsets the control points for parallel strokes. *)
let arc_path l ?(bend = 0.0) u v =
  let r = 14.0 in
  let x1 = l.x.(u) and y1 = l.y.(u) and x2 = l.x.(v) and y2 = l.y.(v) in
  let dx = x2 -. x1 and dy = y2 -. y1 in
  let len = max 1.0 (sqrt ((dx *. dx) +. (dy *. dy))) in
  let ux = dx /. len and uy = dy /. len in
  (* Perpendicular for bends. *)
  let px = -.uy and py = ux in
  let sx = x1 +. (ux *. r) and sy = y1 +. (uy *. r) in
  let ex = x2 -. (ux *. r) and ey = y2 -. (uy *. r) in
  let c1x = sx +. (0.33 *. (ex -. sx)) +. (bend *. px) in
  let c1y = sy +. (0.33 *. (ey -. sy)) +. (bend *. py) in
  let c2x = sx +. (0.66 *. (ex -. sx)) +. (bend *. px) in
  let c2y = sy +. (0.66 *. (ey -. sy)) +. (bend *. py) in
  Printf.sprintf "M %.1f %.1f C %.1f %.1f, %.1f %.1f, %.1f %.1f" sx sy c1x c1y
    c2x c2y ex ey

let nodes g l buf =
  Digraph.iter_vertices
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf
           "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"14\" fill=\"#f8f8f8\" \
            stroke=\"#333\"/>\n\
            <text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" dy=\"4\" \
            font-size=\"9\" font-family=\"sans-serif\">%s</text>\n"
           l.x.(v) l.y.(v) l.x.(v) l.y.(v)
           (escape (Digraph.label g v))))
    g

let of_digraph ?width ?height g =
  let l = layout_of g in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (header ?width ?height l);
  Digraph.iter_arcs
    (fun _ u v ->
      Buffer.add_string buf
        (Printf.sprintf
           "<path d=\"%s\" fill=\"none\" stroke=\"#555\" \
            marker-end=\"url(#arrow)\"/>\n"
           (arc_path l u v)))
    g;
  nodes g l buf;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let of_colored_paths ?width ?height g paths =
  let l = layout_of g in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header ?width ?height l);
  (* Base arcs in light gray. *)
  Digraph.iter_arcs
    (fun _ u v ->
      Buffer.add_string buf
        (Printf.sprintf
           "<path d=\"%s\" fill=\"none\" stroke=\"#dddddd\" \
            marker-end=\"url(#arrow)\"/>\n"
           (arc_path l u v)))
    g;
  (* Per-arc stroke count so parallel dipaths fan out visibly. *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (p, color) ->
      let stroke = palette.(color mod Array.length palette) in
      List.iter
        (fun a ->
          let k = Option.value ~default:0 (Hashtbl.find_opt seen a) in
          Hashtbl.replace seen a (k + 1);
          let bend = 6.0 *. float_of_int k in
          let u, v = Digraph.arc_endpoints g a in
          Buffer.add_string buf
            (Printf.sprintf
               "<path d=\"%s\" fill=\"none\" stroke=\"%s\" \
                stroke-width=\"2\" opacity=\"0.85\"/>\n"
               (arc_path l ~bend u v) stroke))
        (Dipath.arcs p))
    paths;
  nodes g l buf;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
