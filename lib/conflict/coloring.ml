module Bitset = Wl_util.Bitset
module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace

(* DSATUR internals: how many top-bucket scans ran, how many stale (lazily
   deleted) entries those scans dropped, and how many 62-bit words
   [Bitset.first_absent] had to walk to hand out colors — the three terms
   that dominate the bucketed implementation's runtime. *)
let c_runs = Metrics.counter "dsatur.runs"
let c_pops = Metrics.counter "dsatur.bucket_pops"
let c_lazy = Metrics.counter "dsatur.lazy_deletions"
let c_words = Metrics.counter "dsatur.first_absent_words"
let h_colors = Metrics.histogram "dsatur.colors"

type t = int array

let is_valid g coloring =
  Array.length coloring = Ugraph.n_vertices g
  && Array.for_all (fun c -> c >= 0) coloring
  && begin
       (* Walk the adjacency bitsets directly; no edge list is built. *)
       let exception Clash in
       try
         Ugraph.iter_edges
           (fun u v -> if coloring.(u) = coloring.(v) then raise Clash)
           g;
         true
       with Clash -> false
     end

let n_colors coloring =
  if Array.length coloring = 0 then 0 else 1 + Array.fold_left max (-1) coloring

let normalize coloring =
  if Array.length coloring = 0 then [||]
  else begin
    (* Colors are dense in practice; a flat rename table over
       [min .. max] replaces the per-call hashtable. *)
    let lo = Array.fold_left min coloring.(0) coloring in
    let hi = Array.fold_left max coloring.(0) coloring in
    let rename = Array.make (hi - lo + 1) (-1) in
    let next = ref 0 in
    Array.map
      (fun c ->
        let k = c - lo in
        if rename.(k) < 0 then begin
          rename.(k) <- !next;
          incr next
        end;
        rename.(k))
      coloring
  end

let smallest_free g coloring v =
  let used = Array.make (Ugraph.degree g v + 1) false in
  Bitset.iter
    (fun w ->
      let c = coloring.(w) in
      if c >= 0 && c < Array.length used then used.(c) <- true)
    (Ugraph.neighbor_set g v);
  let rec first i = if not used.(i) then i else first (i + 1) in
  first 0

let greedy ?order g =
  let n = Ugraph.n_vertices g in
  let order = match order with Some o -> o | None -> Array.init n Fun.id in
  let coloring = Array.make n (-1) in
  Array.iter (fun v -> coloring.(v) <- smallest_free g coloring v) order;
  coloring

let greedy_desc_degree g =
  let n = Ugraph.n_vertices g in
  let order = Array.init n Fun.id in
  Array.sort (fun u v -> compare (Ugraph.degree g v) (Ugraph.degree g u)) order;
  greedy ~order g

(* DSATUR with saturation buckets.  The selection rule is the classic one —
   max saturation, tie-break on degree then on lowest index — but instead of
   an O(n) scan per pick (with an O(n/word) popcount per candidate!), each
   vertex sits in the bucket of its current saturation degree and only the
   top bucket is scanned.  Bucket membership uses lazy deletion: a vertex
   whose saturation has since grown (or that got colored) is dropped when a
   scan encounters it, so every stale entry is visited at most once. *)
let dsatur_impl g =
  let n = Ugraph.n_vertices g in
  let coloring = Array.make n (-1) in
  if n = 0 then coloring
  else begin
    let sat = Array.init n (fun _ -> Bitset.create (max 1 n)) in
    let sat_deg = Array.make n 0 in
    let deg = Array.init n (Ugraph.degree g) in
    let colored = Array.make n false in
    (* buckets.(s): candidate vertices whose saturation reached s. *)
    let bucket = Array.make n [||] in
    let bucket_len = Array.make n 0 in
    let push s v =
      if bucket_len.(s) = Array.length bucket.(s) then begin
        let cap = max 8 (2 * Array.length bucket.(s)) in
        let grown = Array.make cap 0 in
        Array.blit bucket.(s) 0 grown 0 bucket_len.(s);
        bucket.(s) <- grown
      end;
      bucket.(s).(bucket_len.(s)) <- v;
      bucket_len.(s) <- bucket_len.(s) + 1
    in
    bucket.(0) <- Array.init n Fun.id;
    bucket_len.(0) <- n;
    let max_sat = ref 0 in
    let pick () =
      while bucket_len.(!max_sat) = 0 do
        decr max_sat
      done;
      let s = !max_sat in
      let b = bucket.(s) in
      Metrics.incr c_pops;
      (* Compact live entries in place while looking for the best one. *)
      let live = ref 0 in
      let best = ref (-1) and best_deg = ref (-1) in
      let scanned = bucket_len.(s) in
      for i = 0 to bucket_len.(s) - 1 do
        let v = b.(i) in
        if (not colored.(v)) && sat_deg.(v) = s then begin
          b.(!live) <- v;
          incr live;
          if deg.(v) > !best_deg || (deg.(v) = !best_deg && v < !best) then begin
            best := v;
            best_deg := deg.(v)
          end
        end
      done;
      bucket_len.(s) <- !live;
      Metrics.add c_lazy (scanned - !live);
      if !best < 0 then -1 else !best
    in
    for _ = 1 to n do
      let v =
        let rec go () =
          match pick () with
          | -1 ->
            (* Top bucket emptied out entirely; drop a level and retry. *)
            go ()
          | v -> v
        in
        go ()
      in
      let c = Bitset.first_absent sat.(v) in
      (* first_absent walks whole 62-bit words up to the returned bit. *)
      Metrics.add c_words ((c / 62) + 1);
      coloring.(v) <- c;
      colored.(v) <- true;
      Bitset.iter
        (fun w ->
          if (not colored.(w)) && not (Bitset.mem sat.(w) c) then begin
            Bitset.add sat.(w) c;
            let s = sat_deg.(w) + 1 in
            sat_deg.(w) <- s;
            push s w;
            if s > !max_sat then max_sat := s
          end)
        (Ugraph.neighbor_set g v)
    done;
    coloring
  end

let dsatur g =
  Metrics.incr c_runs;
  let coloring =
    if Trace.enabled () then
      Trace.with_span
        ~args:[ ("vertices", Trace.Int (Ugraph.n_vertices g)) ]
        "dsatur"
        (fun () -> dsatur_impl g)
    else dsatur_impl g
  in
  Metrics.observe h_colors (n_colors coloring);
  coloring

let best_heuristic g =
  let a = greedy_desc_degree g and b = dsatur g in
  if n_colors a <= n_colors b then a else b

let pp ppf coloring =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    (Array.to_list coloring)
