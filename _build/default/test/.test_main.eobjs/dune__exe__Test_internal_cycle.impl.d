test/test_internal_cycle.ml: Alcotest Array Digraph Helpers List Wl_core Wl_dag Wl_digraph Wl_netgen Wl_util
