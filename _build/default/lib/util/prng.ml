type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: advance by the golden gamma, then mix. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = bits64 t in
  { state = seed }

(* Non-negative 62-bit int, safe on 64-bit OCaml. *)
let positive_int t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max_int62 = (1 lsl 62) - 1 in
  let limit = max_int62 - (max_int62 mod bound) in
  let rec draw () =
    let v = positive_int t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Prng.choose_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  (* Floyd's algorithm: k iterations, set-based. *)
  let module IS = Set.Make (Int) in
  let rec go j acc =
    if j >= n then acc
    else
      let v = int t (j + 1) in
      let acc = if IS.mem v acc then IS.add j acc else IS.add v acc in
      go (j + 1) acc
  in
  IS.elements (go (n - k) IS.empty)

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
