(* Tests for UPP (unique dipath property) recognition. *)

open Helpers
open Wl_digraph
module Dag = Wl_dag.Dag
module Upp = Wl_dag.Upp
module Saturating = Wl_util.Saturating
module Prng = Wl_util.Prng
module Figures = Wl_netgen.Figures
module Generators = Wl_netgen.Generators

let dag_of arcs n = Dag.of_digraph_exn (Digraph.of_arcs n arcs)

let test_diamond_not_upp () =
  let d = dag_of [ (0, 1); (0, 2); (1, 3); (2, 3) ] 4 in
  check "diamond not UPP" false (Upp.is_upp d);
  match Upp.find_violation d with
  | None -> Alcotest.fail "expected violation"
  | Some v ->
    check_int "from" 0 v.Upp.from_v;
    check_int "to" 3 v.Upp.to_v;
    check "distinct dipaths" false (Dipath.equal v.Upp.path1 v.Upp.path2);
    check "endpoints 1" true
      (Dipath.src v.Upp.path1 = 0 && Dipath.dst v.Upp.path1 = 3);
    check "endpoints 2" true
      (Dipath.src v.Upp.path2 = 0 && Dipath.dst v.Upp.path2 = 3)

let test_line_upp () =
  let d = dag_of [ (0, 1); (1, 2); (2, 3) ] 4 in
  check "line is UPP" true (Upp.is_upp d)

let test_figures_upp () =
  check "fig5 UPP" true (Upp.is_upp (Figures.fig5_graph 3));
  check "havet UPP" true (Upp.is_upp (Figures.havet_graph ()));
  (* Figure 3's graph has two b1 ~> d1 dipaths: not UPP. *)
  check "fig3 not UPP" false (Upp.is_upp (Wl_core.Instance.dag (Figures.fig3 ())))

let upp_matches_enumeration =
  qtest "is_upp agrees with brute-force enumeration" seed_gen (fun seed ->
      let d = Dag.of_digraph_exn (gnp_dag seed 10 0.25) in
      let brute =
        let ok = ref true in
        for x = 0 to 9 do
          for y = 0 to 9 do
            if x <> y && List.length (Dag.all_dipaths_between ~limit:3 d x y) > 1
            then ok := false
          done
        done;
        !ok
      in
      Upp.is_upp d = brute)

let violation_paths_are_real =
  qtest "violation witnesses are distinct same-endpoint dipaths" seed_gen
    (fun seed ->
      let d = Dag.of_digraph_exn (gnp_dag seed 12 0.3) in
      match Upp.find_violation d with
      | None -> Upp.is_upp d
      | Some v ->
        (not (Dipath.equal v.Upp.path1 v.Upp.path2))
        && Dipath.src v.Upp.path1 = v.Upp.from_v
        && Dipath.src v.Upp.path2 = v.Upp.from_v
        && Dipath.dst v.Upp.path1 = v.Upp.to_v
        && Dipath.dst v.Upp.path2 = v.Upp.to_v)

let generator_produces_upp =
  qtest "gnp_upp produces UPP DAGs" seed_gen ~count:30 (fun seed ->
      Upp.is_upp (Generators.gnp_upp (Prng.create seed) 14 0.3))

let upp_one_cycle_generator =
  qtest "upp_one_internal_cycle: UPP with exactly one internal cycle" seed_gen
    ~count:30 (fun seed ->
      let d = Generators.upp_one_internal_cycle (Prng.create seed) () in
      Upp.is_upp d && Wl_dag.Internal_cycle.count_independent d = 1)

let routable_pairs_match_reachability =
  qtest "routable_pairs = reachable ordered pairs" seed_gen (fun seed ->
      let g = gnp_dag seed 10 0.25 in
      let d = Dag.of_digraph_exn g in
      let pairs = Upp.routable_pairs d in
      let expected = ref [] in
      for x = 9 downto 0 do
        let reach = Traversal.reachable_from g x in
        for y = 9 downto 0 do
          if x <> y && reach.(y) then expected := (x, y) :: !expected
        done
      done;
      List.sort compare pairs = List.sort compare !expected)

let unique_dipath_is_unique_on_upp =
  qtest "unique_dipath returns the only dipath on UPP DAGs" seed_gen ~count:30
    (fun seed ->
      let d = Generators.gnp_upp (Prng.create seed) 12 0.3 in
      List.for_all
        (fun (x, y) ->
          match Upp.unique_dipath d x y with
          | None -> false
          | Some p -> (
            match Dag.all_dipaths_between ~limit:3 d x y with
            | [ only ] -> Dipath.equal p only
            | _ -> false))
        (Upp.routable_pairs d))

let suite =
  [
    ( "upp",
      [
        Alcotest.test_case "diamond violation" `Quick test_diamond_not_upp;
        Alcotest.test_case "line is UPP" `Quick test_line_upp;
        Alcotest.test_case "figure graphs" `Quick test_figures_upp;
        upp_matches_enumeration;
        violation_paths_are_real;
        generator_produces_upp;
        upp_one_cycle_generator;
        routable_pairs_match_reachability;
        unique_dipath_is_unique_on_upp;
      ] );
  ]
