lib/netgen/figures.mli: Instance Wl_core Wl_dag
