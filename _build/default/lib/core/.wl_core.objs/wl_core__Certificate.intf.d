lib/core/certificate.mli: Instance Solver
