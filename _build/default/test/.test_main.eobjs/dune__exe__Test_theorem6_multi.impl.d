test/test_theorem6_multi.ml: Alcotest Assignment Fun Helpers Instance List Load Solver Theorem6 Theorem6_multi Wl_core Wl_dag Wl_netgen Wl_util
