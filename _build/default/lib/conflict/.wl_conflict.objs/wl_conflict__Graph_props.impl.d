lib/conflict/graph_props.ml: Array Fun List Queue Ugraph Wl_util
