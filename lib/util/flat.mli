(** Bigarray-backed flat int arrays.

    Long-lived instance-sized int tables (CSR index, occupancy) stored
    off the OCaml heap: the minor collector never copies them and the
    major collector scans one custom block instead of n words.
    Elements are native 63-bit ints, so packed words fit unchanged.

    Hot loops should use the [unsafe_*] pair (single load/store, like
    [Array.unsafe_get]) after validating bounds structurally. *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** Zero-filled. *)

val length : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit
val unsafe_get : t -> int -> int
val unsafe_set : t -> int -> int -> unit
val fill : t -> int -> unit
val of_array : int array -> t
val to_array : t -> int array
val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit

val ( .%() ) : t -> int -> int
(** Checked read: [Flat.(a.%(i))]. *)

val ( .%()<- ) : t -> int -> int -> unit
val ( .!() ) : t -> int -> int
(** Unchecked read: [Flat.(a.!(i))]. *)

val ( .!()<- ) : t -> int -> int -> unit
