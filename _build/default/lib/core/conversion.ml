open Wl_digraph

let segments_of_path g converters p =
  let is_converter = Array.make (Digraph.n_vertices g) false in
  List.iter (fun v -> is_converter.(v) <- true) converters;
  let verts = Dipath.vertices p in
  let n = List.length verts in
  (* Cut after every interior converter vertex. *)
  let rec cut acc current i = function
    | [] -> List.rev (List.rev current :: acc)
    | v :: rest ->
      let current = v :: current in
      if i > 0 && i < n - 1 && is_converter.(v) then
        cut (List.rev current :: acc) [ v ] (i + 1) rest
      else cut acc current (i + 1) rest
  in
  cut [] [] 0 verts
  |> List.filter (fun seg -> List.length seg >= 2)
  |> List.map (Dipath.make g)

let split_instance inst ~converters =
  let g = Instance.graph inst in
  let segments =
    List.concat_map (segments_of_path g converters) (Instance.paths_list inst)
  in
  Instance.make (Instance.dag inst) segments

let segments_of inst ~converters =
  let g = Instance.graph inst in
  List.map
    (fun p -> List.length (segments_of_path g converters p))
    (Instance.paths_list inst)

let wavelengths inst ~converters =
  Solver.solve (split_instance inst ~converters)

let greedy_placement inst ~budget =
  if budget < 0 then invalid_arg "Conversion.greedy_placement";
  let g = Instance.graph inst in
  let n = Digraph.n_vertices g in
  let rec place chosen report remaining =
    if remaining = 0 then (List.rev chosen, report)
    else begin
      let best = ref None in
      for v = n - 1 downto 0 do
        if not (List.mem v chosen) then begin
          let candidate = wavelengths inst ~converters:(v :: chosen) in
          let better =
            match !best with
            | None -> candidate.Solver.n_wavelengths < report.Solver.n_wavelengths
            | Some (_, r) ->
              candidate.Solver.n_wavelengths < r.Solver.n_wavelengths
          in
          if better then best := Some (v, candidate)
        end
      done;
      match !best with
      | None -> (List.rev chosen, report)
      | Some (v, r) -> place (v :: chosen) r (remaining - 1)
    end
  in
  place [] (Solver.solve inst) budget

