lib/core/bounds.ml: Conflict_of Instance Load Wl_conflict
