(** Random dipath families over a given DAG.

    The paper's statements are "for any family of dipaths"; the property
    tests and benches quantify over these samplers. *)

open Wl_digraph

val random_walk : Wl_util.Prng.t -> Wl_dag.Dag.t -> Dipath.t option
(** A uniform-start random directed walk extended to a random length
    (at least one arc); [None] when the start has no outgoing arc. *)

val random_family : Wl_util.Prng.t -> Wl_dag.Dag.t -> int -> Dipath.t list
(** [random_family rng d k] draws until it has [k] dipaths (skipping dead
    starts); returns fewer only when the DAG has no arc at all. *)

val source_sink_paths : Wl_util.Prng.t -> Wl_dag.Dag.t -> int -> Dipath.t list
(** [k] random maximal dipaths: start at a random source, walk randomly to
    a sink. *)

val all_to_all_instance : Wl_dag.Dag.t -> Wl_core.Instance.t
(** One dipath per routable ordered pair (the unique one on UPP-DAGs). *)

val random_instance :
  Wl_util.Prng.t -> Wl_dag.Dag.t -> int -> Wl_core.Instance.t
(** {!random_family} wrapped as an instance. *)
