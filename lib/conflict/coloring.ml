module Bitset = Wl_util.Bitset
module Arena = Wl_util.Arena
module Union_find = Wl_util.Union_find
module Parallel = Wl_util.Parallel
module Metrics = Wl_obs.Metrics
module Trace = Wl_obs.Trace

(* DSATUR internals: how many top-bucket scans ran, how many stale (lazily
   deleted) entries those scans dropped, and how many 62-bit words
   [Bitset.first_absent] had to walk to hand out colors — the three terms
   that dominate the bucketed implementation's runtime. *)
let c_runs = Metrics.counter "dsatur.runs"
let c_pops = Metrics.counter "dsatur.bucket_pops"
let c_lazy = Metrics.counter "dsatur.lazy_deletions"
let c_words = Metrics.counter "dsatur.first_absent_words"
let h_colors = Metrics.histogram "dsatur.colors"
let c_par_runs = Metrics.counter "dsatur.par_runs"
let c_par_comps = Metrics.counter "dsatur.par_components"

type t = int array

let is_valid g coloring =
  Array.length coloring = Ugraph.n_vertices g
  && Array.for_all (fun c -> c >= 0) coloring
  && begin
       (* Walk the adjacency bitsets directly; no edge list is built. *)
       let exception Clash in
       try
         Ugraph.iter_edges
           (fun u v -> if coloring.(u) = coloring.(v) then raise Clash)
           g;
         true
       with Clash -> false
     end

let n_colors coloring =
  if Array.length coloring = 0 then 0 else 1 + Array.fold_left max (-1) coloring

let normalize coloring =
  if Array.length coloring = 0 then [||]
  else begin
    (* Colors are dense in practice; a flat rename table over
       [min .. max] replaces the per-call hashtable. *)
    let lo = Array.fold_left min coloring.(0) coloring in
    let hi = Array.fold_left max coloring.(0) coloring in
    let rename = Array.make (hi - lo + 1) (-1) in (* alloc-ok *)
    let next = ref 0 in
    Array.map
      (fun c ->
        let k = c - lo in
        if rename.(k) < 0 then begin
          rename.(k) <- !next;
          incr next
        end;
        rename.(k))
      coloring
  end

let smallest_free g coloring v =
  let used = Array.make (Ugraph.degree g v + 1) false in (* alloc-ok *)
  Bitset.iter
    (fun w ->
      let c = coloring.(w) in
      if c >= 0 && c < Array.length used then used.(c) <- true)
    (Ugraph.neighbor_set g v);
  let rec first i = if not used.(i) then i else first (i + 1) in
  first 0

let greedy ?order g =
  let n = Ugraph.n_vertices g in
  let order = match order with Some o -> o | None -> Array.init n Fun.id in (* alloc-ok *)
  let coloring = Array.make n (-1) in (* alloc-ok *)
  Array.iter (fun v -> coloring.(v) <- smallest_free g coloring v) order;
  coloring

let greedy_desc_degree g =
  let n = Ugraph.n_vertices g in
  let order = Array.init n Fun.id in (* alloc-ok *)
  Array.sort (fun u v -> compare (Ugraph.degree g v) (Ugraph.degree g u)) order;
  greedy ~order g

(* Reusable DSATUR working set, one per domain: the saturation bitsets
   (the dominant allocation, O(n^2/62) words), the bucket rows, and the
   arena-backed flat scratch all persist across runs, so a steady stream
   of same-sized colorings stops hammering the minor heap.  Buffers grow
   to the largest graph seen on the domain and are retained — the price
   of warm runs, bounded by that largest graph. *)
type dscratch = {
  d_arena : Arena.t;
  mutable d_cap : int; (* sat array count and per-bitset capacity *)
  mutable d_sat : Bitset.t array;
  mutable d_bucket : int array array; (* persistent rows, grow-on-demand *)
  mutable d_sat_deg : int array;
  mutable d_deg : int array;
  mutable d_colored : int array; (* 0/1 *)
  mutable d_bucket_len : int array;
}

let dscratch () =
  {
    d_arena = Arena.create ();
    d_cap = 0;
    d_sat = [||];
    d_bucket = [||];
    d_sat_deg = [||];
    d_deg = [||];
    d_colored = [||];
    d_bucket_len = [||];
  }

let dls_dscratch = Domain.DLS.new_key dscratch

(* Size the scratch for an n-vertex run and reset the per-run state.
   Allocation only happens when n exceeds everything seen before. *)
let prepare scr n =
  if n > scr.d_cap then begin
    scr.d_cap <- n;
    scr.d_sat <- Array.init n (fun _ -> Bitset.create n); (* alloc-ok *)
    let rows = Array.make n [||] in (* alloc-ok *)
    Array.blit scr.d_bucket 0 rows 0 (Array.length scr.d_bucket);
    scr.d_bucket <- rows
  end;
  Arena.reset scr.d_arena;
  scr.d_sat_deg <- Arena.ints scr.d_arena n;
  scr.d_deg <- Arena.ints scr.d_arena n;
  scr.d_colored <- Arena.ints scr.d_arena n;
  scr.d_bucket_len <- Arena.ints scr.d_arena n;
  for v = 0 to n - 1 do
    Bitset.clear scr.d_sat.(v);
    scr.d_sat_deg.(v) <- 0;
    scr.d_colored.(v) <- 0;
    scr.d_bucket_len.(v) <- 0
  done

(* DSATUR with saturation buckets.  The selection rule is the classic one —
   max saturation, tie-break on degree then on lowest index — but instead of
   an O(n) scan per pick (with an O(n/word) popcount per candidate!), each
   vertex sits in the bucket of its current saturation degree and only the
   top bucket is scanned.  Bucket membership uses lazy deletion: a vertex
   whose saturation has since grown (or that got colored) is dropped when a
   scan encounters it, so every stale entry is visited at most once. *)
let dsatur_impl g =
  let n = Ugraph.n_vertices g in
  let coloring = Array.make n (-1) in (* alloc-ok *)
  if n = 0 then coloring
  else begin
    let scr = Domain.DLS.get dls_dscratch in
    prepare scr n;
    let sat = scr.d_sat in
    let sat_deg = scr.d_sat_deg in
    let deg = scr.d_deg in
    let colored = scr.d_colored in
    (* buckets.(s): candidate vertices whose saturation reached s. *)
    let bucket = scr.d_bucket in
    let bucket_len = scr.d_bucket_len in
    for v = 0 to n - 1 do
      deg.(v) <- Ugraph.degree g v
    done;
    let push s v =
      if bucket_len.(s) = Array.length bucket.(s) then begin
        let cap = max 8 (2 * Array.length bucket.(s)) in
        let grown = Array.make cap 0 in (* alloc-ok *)
        Array.blit bucket.(s) 0 grown 0 bucket_len.(s);
        bucket.(s) <- grown
      end;
      bucket.(s).(bucket_len.(s)) <- v;
      bucket_len.(s) <- bucket_len.(s) + 1
    in
    if Array.length bucket.(0) < n then bucket.(0) <- Array.make n 0; (* alloc-ok *)
    for v = 0 to n - 1 do
      bucket.(0).(v) <- v
    done;
    bucket_len.(0) <- n;
    let max_sat = ref 0 in
    let pick () =
      while bucket_len.(!max_sat) = 0 do
        decr max_sat
      done;
      let s = !max_sat in
      let b = bucket.(s) in
      Metrics.incr c_pops;
      (* Compact live entries in place while looking for the best one. *)
      let live = ref 0 in
      let best = ref (-1) and best_deg = ref (-1) in
      let scanned = bucket_len.(s) in
      for i = 0 to bucket_len.(s) - 1 do
        let v = b.(i) in
        if colored.(v) = 0 && sat_deg.(v) = s then begin
          b.(!live) <- v;
          incr live;
          if deg.(v) > !best_deg || (deg.(v) = !best_deg && v < !best) then begin
            best := v;
            best_deg := deg.(v)
          end
        end
      done;
      bucket_len.(s) <- !live;
      Metrics.add c_lazy (scanned - !live);
      if !best < 0 then -1 else !best
    in
    for _ = 1 to n do
      let v =
        let rec go () =
          match pick () with
          | -1 ->
            (* Top bucket emptied out entirely; drop a level and retry. *)
            go ()
          | v -> v
        in
        go ()
      in
      let c = Bitset.first_absent sat.(v) in
      (* first_absent walks whole 62-bit words up to the returned bit. *)
      Metrics.add c_words ((c / 62) + 1);
      coloring.(v) <- c;
      colored.(v) <- 1;
      Bitset.iter
        (fun w ->
          if colored.(w) = 0 && not (Bitset.mem sat.(w) c) then begin
            Bitset.add sat.(w) c;
            let s = sat_deg.(w) + 1 in
            sat_deg.(w) <- s;
            push s w;
            if s > !max_sat then max_sat := s
          end)
        (Ugraph.neighbor_set g v)
    done;
    coloring
  end

let dsatur g =
  Metrics.incr c_runs;
  let coloring =
    if Trace.enabled () then
      Trace.with_span
        ~args:[ ("vertices", Trace.Int (Ugraph.n_vertices g)) ]
        "dsatur"
        (fun () -> dsatur_impl g)
    else dsatur_impl g
  in
  Metrics.observe h_colors (n_colors coloring);
  coloring

(* Component-parallel DSATUR.  Saturation never crosses a component
   boundary, so sequential DSATUR on a disconnected graph colors each
   connected component exactly as a standalone run would: the global
   max-saturation pick restricted to one component follows that
   component's own pick order (an argmax landing in a component is the
   argmax over it, and the degree/lowest-index tie-breaks are preserved
   because the local numbering below keeps ascending global order).
   Splitting on components and coloring them on separate domains is
   therefore {e behavior-preserving per vertex} — the property test pins
   it — and wavelengths merge with no palette offset, again exactly as
   the sequential run reuses colors across components.

   [Parallel.map_array] brings PR 2's probe logic with it: the first
   component is timed sequentially and the whole map falls back to
   sequential when the projected total is under its 2 ms threshold, so
   small inputs never pay domain-spawn overhead.  Single-component
   graphs skip the decomposition entirely. *)
let dsatur_par_impl ?domains g =
  let n = Ugraph.n_vertices g in
  if n = 0 then [||]
  else if
    (* With a domain budget of one the split work is pure loss, so take
       the sequential path before even running union-find.  An explicit
       [domains] request above 1 is honored even on a single-core
       machine (the mapper clamps internally) — that keeps the
       split/merge path exercisable by tests anywhere. *)
    (match domains with Some d -> d | None -> Parallel.default_domains ())
    <= 1
  then dsatur_impl g
  else begin
    let uf = Union_find.create n in
    Ugraph.iter_edges (fun u v -> ignore (Union_find.union uf u v)) g;
    let ncomp = Union_find.count uf in
    Metrics.add c_par_comps ncomp;
    if ncomp <= 1 then dsatur_impl g
    else begin
      (* Group vertices by component, local numbering ascending in the
         global order (the tie-break-preserving remap). *)
      let comp_of = Array.make n 0 in (* alloc-ok *)
      let comp_idx = Array.make n (-1) in (* alloc-ok *)
      let sizes = Array.make ncomp 0 in (* alloc-ok *)
      let next = ref 0 in
      for v = 0 to n - 1 do
        let r = Union_find.find uf v in
        if comp_idx.(r) < 0 then begin
          comp_idx.(r) <- !next;
          incr next
        end;
        let c = comp_idx.(r) in
        comp_of.(v) <- c;
        sizes.(c) <- sizes.(c) + 1
      done;
      let local = Array.make n 0 in (* alloc-ok *)
      let cursor = Array.make ncomp 0 in (* alloc-ok *)
      let verts = Array.init ncomp (fun c -> Array.make sizes.(c) 0) in (* alloc-ok *)
      for v = 0 to n - 1 do
        let c = comp_of.(v) in
        let i = cursor.(c) in
        local.(v) <- i;
        verts.(c).(i) <- v;
        cursor.(c) <- i + 1
      done;
      let subs = Array.init ncomp (fun c -> Ugraph.create sizes.(c)) in (* alloc-ok *)
      (* iter_edges emits each edge once (u < v) from a valid graph, so
         the unchecked insert is safe and skips the per-edge membership
         probe — the split's dominant cost on dense graphs. *)
      Ugraph.iter_edges
        (fun u v -> Ugraph.unsafe_add_edge subs.(comp_of.(u)) local.(u) local.(v))
        g;
      let colorings = Parallel.map_array ?domains dsatur_impl subs in
      let out = Array.make n (-1) in (* alloc-ok *)
      for c = 0 to ncomp - 1 do
        let vs = verts.(c) and col = colorings.(c) in
        for i = 0 to Array.length vs - 1 do
          out.(vs.(i)) <- col.(i)
        done
      done;
      out
    end
  end

let dsatur_par ?domains g =
  Metrics.incr c_par_runs;
  let coloring =
    if Trace.enabled () then
      Trace.with_span
        ~args:[ ("vertices", Trace.Int (Ugraph.n_vertices g)) ]
        "dsatur.par"
        (fun () -> dsatur_par_impl ?domains g)
    else dsatur_par_impl ?domains g
  in
  Metrics.observe h_colors (n_colors coloring);
  coloring

let best_heuristic ?domains g =
  let a = greedy_desc_degree g and b = dsatur_par ?domains g in
  if n_colors a <= n_colors b then a else b

let pp ppf coloring =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    (Array.to_list coloring)
