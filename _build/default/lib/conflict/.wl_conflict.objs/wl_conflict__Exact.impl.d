lib/conflict/exact.ml: Array Clique Coloring List Ugraph Wl_util
