let default_domains () = min 8 (Domain.recommended_domain_count ())

(* Dynamic chunking: domains claim fixed-size index blocks off a shared
   atomic counter, so an unlucky domain stuck on slow items no longer
   serializes the whole map (the old static split did).  Each claimed block
   is computed into a private buffer — no domain ever writes into memory
   another domain touches, which also kills the false sharing (and the
   per-element boxing) of the old ['a option array] scheme.  Results are
   blitted into the output by index after the join, so the outcome is
   deterministic and identical for any domain count. *)
let map_array ?domains f input =
  let n = Array.length input in
  let d = match domains with Some d -> d | None -> default_domains () in
  if d <= 1 || n <= 1 then Array.map f input
  else begin
    let d = min d n in
    let block = max 1 (n / (d * 8)) in
    let next = Atomic.make 0 in
    let worker () =
      let rec claim acc =
        let lo = Atomic.fetch_and_add next block in
        if lo >= n then acc
        else begin
          let len = min block (n - lo) in
          let buf = Array.init len (fun i -> f input.(lo + i)) in
          claim ((lo, buf) :: acc)
        end
      in
      claim []
    in
    let handles = List.init (d - 1) (fun _ -> Domain.spawn worker) in
    let mine = try Ok (worker ()) with e -> Error e in
    let rest =
      List.map (fun h -> try Ok (Domain.join h) with e -> Error e) handles
    in
    let chunks =
      List.concat_map
        (function Ok c -> c | Error e -> raise e)
        (mine :: rest)
    in
    match chunks with
    | [] -> [||] (* unreachable: n > 1 *)
    | (_, first) :: _ ->
      let out = Array.make n first.(0) in
      List.iter
        (fun (lo, buf) -> Array.blit buf 0 out lo (Array.length buf))
        chunks;
      out
  end

let init ?domains n f = map_array ?domains f (Array.init n Fun.id)

let for_all ?domains p input =
  Array.for_all Fun.id (map_array ?domains p input)

let count ?domains p input =
  Array.fold_left
    (fun acc b -> if b then acc + 1 else acc)
    0
    (map_array ?domains p input)
