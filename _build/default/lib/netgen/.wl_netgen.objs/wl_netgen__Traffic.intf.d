lib/netgen/traffic.mli: Routing Wl_core Wl_dag Wl_util
