lib/netgen/path_gen.mli: Dipath Wl_core Wl_dag Wl_digraph Wl_util
