dag 12
vlabel 0 a1
vlabel 1 a2
vlabel 2 a3
vlabel 3 b1
vlabel 4 b2
vlabel 5 b3
vlabel 6 c1
vlabel 7 c2
vlabel 8 c3
vlabel 9 d1
vlabel 10 d2
vlabel 11 d3
arc 0 3
arc 3 6
arc 4 6
arc 6 9
arc 1 4
arc 4 7
arc 5 7
arc 7 10
arc 2 5
arc 5 8
arc 3 8
arc 8 11
path 0 3 8
path 3 8 11
path 2 5 8 11
path 2 5 7 10
path 1 4 7 10
path 1 4 6 9
path 0 3 6 9
